(** Supervised inference service runtime.

    Wraps compiled {!Scallop_core.Session} programs into a long-lived query
    engine built to stay up while individual queries blow their budget,
    workers wedge, or load spikes:

    - {b Admission control}: a bounded FIFO queue.  A submission that would
      exceed the depth limit — or arrives while the oldest queued request
      has waited past [max_queue_age] — is shed immediately with a typed
      [Exec_error.Overloaded] instead of building an unbounded backlog.
    - {b Deadline propagation}: each request carries an absolute deadline
      ([request_timeout] from submission).  Every execution attempt runs
      under a {!Scallop_core.Budget} whose wall-clock axis is the
      {e remaining} time, so queue wait and earlier attempts eat into the
      same deadline ({!Scallop_core.Budget.constrain}).
    - {b Retry with backoff}: failures classified transient by
      {!Scallop_core.Exec_error.is_transient} (worker lost, poisoned
      numerics) are retried up to [max_retries] times with capped, jittered
      exponential backoff.  Deterministic failures are never retried.
    - {b Circuit-broken degradation}: one {!Breaker} per rung of
      {!Scallop_core.Registry.degradation_ladder}.  A [Budget_exceeded]
      attempt records a failure and falls one rung; after
      [breaker_threshold] consecutive failures the rung's breaker opens and
      subsequent requests skip straight to the cheaper rung without paying
      for the doomed attempt, until a half-open probe succeeds and restores
      fidelity.
    - {b Worker supervision}: requests execute on [jobs] worker domains
      that heartbeat on the service clock.  A watchdog domain cancels
      attempts whose heartbeat goes stale (via the attempt's
      {!Scallop_utils.Cancel} token), declares workers dead when the cancel
      is ignored past a grace period or the domain exited (chaos kill,
      unexpected exception), respawns a replacement domain, and requeues
      the orphaned request against its remaining retry budget — surfacing
      [Exec_error.Worker_lost] only once that is exhausted.
    - {b Chaos}: every attempt consults the installed {!Chaos.t}; injected
      kills/stalls/synthetic faults flow through exactly the recovery
      machinery above, which is how tests prove the service keeps answering
      under fire.

    Determinism contract: request [id]s are submission ordinals, and
    request [i] executes under [Session.batch_config config.interp i] with
    a fresh provenance per attempt — so with chaos disabled and no faults,
    [submit]/[await] results are bit-identical to
    [Session.run_batch ~config:config.interp] over the same requests in
    submission order, at any worker count.

    Every submitted request receives {e exactly one} terminal outcome:
    a result, a degraded result, or a typed error — shed at admission,
    failed in execution, or cancelled by {!shutdown}.  [shutdown] drains
    the queue, joins every domain ever spawned (including replaced ones),
    and fails whatever could not be served. *)

open Scallop_core
module U = Scallop_utils

(* ---- configuration --------------------------------------------------------------- *)

type config = {
  jobs : int;  (** worker domains executing requests *)
  queue_depth : int;  (** max requests waiting (not in flight) *)
  max_queue_age : float option;
      (** shed new arrivals while the oldest queued request has waited
          longer than this (seconds) *)
  request_timeout : float option;  (** per-request deadline from submission *)
  max_retries : int;  (** transient retries (incl. watchdog requeues) per request *)
  backoff_base : float;  (** first retry backoff, seconds *)
  backoff_cap : float;  (** backoff ceiling, seconds *)
  breaker_threshold : int;  (** consecutive budget failures to open a rung *)
  breaker_cooldown : float;  (** seconds a tripped rung stays open *)
  heartbeat_timeout : float;
      (** a busy worker silent for longer is watchdog-cancelled; must
          exceed the worst legitimate attempt duration *)
  lost_grace : float;
      (** extra silence after the cancel before the worker is declared
          dead and replaced *)
  watchdog_interval : float option;  (** scan period; [None] disables the watchdog *)
  interp : Interp.config;
      (** template interpreter config; request [i] runs under
          [Session.batch_config interp i].  Its budget's cancel token is
          replaced per attempt by the watchdog token. *)
  chaos : Chaos.t;  (** initial fault-injection config (see {!set_chaos}) *)
  now : unit -> float;  (** injectable clock (ages, deadlines, heartbeats, breakers) *)
  seed : int;  (** backoff jitter root *)
}

let default_config () =
  {
    jobs = 2;
    queue_depth = 64;
    max_queue_age = None;
    request_timeout = None;
    max_retries = 2;
    backoff_base = 0.01;
    backoff_cap = 0.5;
    breaker_threshold = 3;
    breaker_cooldown = 5.0;
    heartbeat_timeout = 10.0;
    lost_grace = 1.0;
    watchdog_interval = Some 0.25;
    interp = Interp.default_config ();
    chaos = Chaos.none;
    now = U.Monotonic.now;
    seed = 0;
  }

(* ---- requests --------------------------------------------------------------------- *)

type payload =
  | Run of {
      compiled : Session.compiled;
      facts : (string * (Provenance.Input.t * Tuple.t) list) list;
      outputs : string list option;
    }
      (** a one-shot query: executed by [Session.run] under the rung the
          degradation ladder currently grants *)
  | Exec of (rung:Registry.spec -> config:Interp.config -> Session.result)
      (** an opaque execution run under the same admission, deadline,
          retry, chaos and watchdog machinery; receives the granted rung
          and the per-attempt constrained config.  Incremental sessions
          ([Incr]) submit these — they pin their own provenance, so they
          ignore the rung, but still degrade by budget via the config. *)

(** The single terminal verdict of a request. *)
type outcome = {
  response : (Session.result, Exec_error.t) result;
  rung : Registry.spec;  (** provenance rung that produced the verdict *)
  degraded : bool;  (** served (or failed) below full fidelity *)
  attempts : int;  (** execution attempts started (0 if shed at admission) *)
  retries : int;  (** transient retries consumed, incl. watchdog requeues *)
  requeues : int;  (** watchdog recoveries among those retries *)
  latency : float;  (** submission → terminal outcome, seconds *)
}

type ticket = {
  id : int;  (** submission ordinal; also the RNG substream index *)
  submitted_at : float;
  payload : payload option;  (** [None] only for admission-shed tickets *)
  mutable epoch : int;  (** bumped at each claim; stale workers can't complete *)
  mutable attempts : int;
  mutable retries_used : int;
  mutable requeues : int;
  mutable last_rung : int;  (** ladder index of the most recent attempt *)
  mutable outcome : outcome option;  (** set exactly once, under the service mutex *)
}

let ticket_id (t : ticket) = t.id

(* ---- counters --------------------------------------------------------------------- *)

type stats = {
  mutable submitted : int;
  mutable accepted : int;
  mutable shed : int;  (** rejected at admission ([Overloaded]) *)
  mutable completed : int;  (** terminal outcomes delivered (incl. shed) *)
  mutable ok : int;
  mutable degraded : int;  (** successes served below rung 0 *)
  mutable failed : int;
  mutable retries : int;
  mutable requeues : int;
  mutable watchdog_cancels : int;
  mutable workers_lost : int;
  mutable respawns : int;
  mutable breaker_opens : int;  (** filled in by {!stats} from the breakers *)
  mutable chaos_kills : int;
  mutable chaos_stalls : int;
  mutable chaos_budget_faults : int;
  mutable chaos_nans : int;
  mutable domains_spawned : int;
  mutable domains_joined : int;
}

let empty_stats () =
  {
    submitted = 0;
    accepted = 0;
    shed = 0;
    completed = 0;
    ok = 0;
    degraded = 0;
    failed = 0;
    retries = 0;
    requeues = 0;
    watchdog_cancels = 0;
    workers_lost = 0;
    respawns = 0;
    breaker_opens = 0;
    chaos_kills = 0;
    chaos_stalls = 0;
    chaos_budget_faults = 0;
    chaos_nans = 0;
    domains_spawned = 0;
    domains_joined = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "submitted=%d accepted=%d shed=%d completed=%d ok=%d degraded=%d failed=%d retries=%d \
     requeues=%d watchdog-cancels=%d workers-lost=%d respawns=%d breaker-opens=%d \
     chaos[kills=%d stalls=%d budget=%d nan=%d] domains[spawned=%d joined=%d]"
    s.submitted s.accepted s.shed s.completed s.ok s.degraded s.failed s.retries s.requeues
    s.watchdog_cancels s.workers_lost s.respawns s.breaker_opens s.chaos_kills s.chaos_stalls
    s.chaos_budget_faults s.chaos_nans s.domains_spawned s.domains_joined

(* ---- service state ---------------------------------------------------------------- *)

type worker = {
  slot : int;
  mutable generation : int;  (** bumped on respawn; zombie loops exit on mismatch *)
  mutable domain : unit Domain.t option;
  heartbeat : float Atomic.t;  (** service-clock reading of the last sign of life *)
  alive : bool Atomic.t;  (** tombstoned by the domain body on any exit *)
  mutable current : (ticket * U.Cancel.t) option;  (** in-flight request + its attempt token *)
  mutable watchdog_cancelled : bool;  (** the watchdog fired [current]'s token *)
}

type t = {
  config : config;
  spec : Registry.spec;  (** rung 0: full fidelity *)
  ladder : Registry.spec array;
  breakers : Breaker.t array;  (** one per rung; the last rung always serves *)
  mutex : Mutex.t;
  nonempty : Condition.t;  (** queue gained work, or the service is stopping *)
  done_cond : Condition.t;  (** some request reached its terminal outcome *)
  queue : ticket Queue.t;
  mutable chaos : Chaos.t;
  chaos_ordinal : int Atomic.t;  (** global attempt counter keying chaos decisions *)
  mutable next_id : int;
  mutable stopping : bool;
  workers : worker array;
  mutable watchdog : unit Domain.t option;
  mutable dead_domains : unit Domain.t list;  (** replaced domains, joined at shutdown *)
  stats : stats;
}

let locked svc f =
  Mutex.lock svc.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock svc.mutex) f

(* Real-time sleep in small cancellable slices.  [heartbeat] keeps the
   watchdog off a worker that is intentionally waiting (backoff); chaos
   stalls pass [None] so the stall looks exactly like a wedged worker. *)
let interruptible_sleep svc ?token ?heartbeat dur =
  let t0 = U.Monotonic.now () in
  let rec go () =
    let remaining = dur -. (U.Monotonic.now () -. t0) in
    if
      remaining > 0.0 && (not svc.stopping)
      && match token with Some tk -> not (U.Cancel.cancelled tk) | None -> true
    then begin
      (match heartbeat with
      | Some w -> Atomic.set w.heartbeat (svc.config.now ())
      | None -> ());
      Unix.sleepf (Float.min 0.01 remaining);
      go ()
    end
  in
  go ()

(* ---- result guardrails ------------------------------------------------------------ *)

(** A recovered output probability that is NaN/Inf poisons anything
    downstream; the service turns it into a typed, transient error. *)
let result_non_finite (r : Session.result) : string option =
  List.find_map
    (fun (pred, rows) ->
      if List.exists (fun (_, o) -> not (Float.is_finite (Provenance.Output.prob o))) rows
      then Some (Fmt.str "output probabilities of %s" pred)
      else None)
    r.Session.outputs

(* Chaos NaN injection: poison the first output row so the fault travels
   through the same guardrail a real numeric fault would. *)
let poison_result (r : Session.result) : Session.result * bool =
  let poisoned = ref false in
  let outputs =
    List.map
      (fun (pred, rows) ->
        ( pred,
          List.map
            (fun (tuple, o) ->
              if !poisoned then (tuple, o)
              else begin
                poisoned := true;
                (tuple, Provenance.Output.O_prob Float.nan)
              end)
            rows ))
      r.Session.outputs
  in
  ({ r with Session.outputs }, !poisoned)

(* ---- completion (all under the service mutex) ------------------------------------- *)

(* Record [ticket]'s terminal outcome.  Caller must hold the mutex and have
   verified the ticket is not yet terminal. *)
let finish_locked svc (ticket : ticket) response ~rung_idx =
  assert (ticket.outcome = None);
  let now = svc.config.now () in
  ticket.outcome <-
    Some
      {
        response;
        rung = svc.ladder.(rung_idx);
        degraded = rung_idx > 0;
        attempts = ticket.attempts;
        retries = ticket.retries_used;
        requeues = ticket.requeues;
        latency = now -. ticket.submitted_at;
      };
  svc.stats.completed <- svc.stats.completed + 1;
  (match response with
  | Ok _ ->
      svc.stats.ok <- svc.stats.ok + 1;
      if rung_idx > 0 then svc.stats.degraded <- svc.stats.degraded + 1
  | Error _ -> svc.stats.failed <- svc.stats.failed + 1);
  Condition.broadcast svc.done_cond

(* Does worker [w] (at generation [my_gen]) still own [ticket]?  False once
   the watchdog replaced the worker or requeued the request. *)
let owns_locked w my_gen (ticket : ticket) =
  w.generation = my_gen
  && (match w.current with Some (tk, _) -> tk == ticket | None -> false)
  && ticket.outcome = None

(* Worker-side completion: applies only if we still own the ticket (the
   watchdog may have taken it over while we computed). *)
let complete svc w my_gen ticket response ~rung_idx =
  locked svc (fun () ->
      if owns_locked w my_gen ticket then begin
        w.current <- None;
        finish_locked svc ticket response ~rung_idx
      end)

let requeue_locked svc (ticket : ticket) =
  ticket.retries_used <- ticket.retries_used + 1;
  ticket.requeues <- ticket.requeues + 1;
  svc.stats.retries <- svc.stats.retries + 1;
  svc.stats.requeues <- svc.stats.requeues + 1;
  Queue.push ticket svc.queue;
  Condition.signal svc.nonempty

(* ---- the attempt loop ------------------------------------------------------------- *)

(* Execute [ticket] to a terminal outcome (or hand it back to the queue /
   the watchdog).  Runs on worker [w]'s domain; raises [Chaos.Killed] out
   of the whole worker when chaos strikes. *)
let execute svc w my_gen (ticket : ticket) =
  let cfg = svc.config in
  let payload = Option.get ticket.payload in
  let jitter = U.Rng.substream (U.Rng.create cfg.seed) ticket.id in
  let deadline = Option.map (fun t -> ticket.submitted_at +. t) cfg.request_timeout in
  let last_rung = Array.length svc.ladder - 1 in
  let rec attempt r =
    (* Skip rungs whose breaker is open; the cheapest rung always serves. *)
    let r =
      let rec adv r =
        if r >= last_rung then last_rung
        else if Breaker.admit svc.breakers.(r) then r
        else adv (r + 1)
      in
      adv r
    in
    let now = cfg.now () in
    let remaining = Option.map (fun d -> d -. now) deadline in
    match remaining with
    | Some rem when rem <= 0.0 ->
        (* Deadline burned (queueing, earlier attempts) before any more work. *)
        complete svc w my_gen ticket
          (Error
             (Exec_error.Budget_exceeded
                {
                  kind = Exec_error.Deadline;
                  stratum = -1;
                  iterations = 0;
                  elapsed = now -. ticket.submitted_at;
                }))
          ~rung_idx:r
    | _ ->
        let token = U.Cancel.create () in
        let chaos, admitted =
          locked svc (fun () ->
              let admitted = owns_locked w my_gen ticket in
              if admitted then begin
                ticket.attempts <- ticket.attempts + 1;
                ticket.last_rung <- r;
                (* a fresh token voids any cancel verdict on the previous one *)
                w.watchdog_cancelled <- false;
                w.current <- Some (ticket, token)
              end;
              (svc.chaos, admitted))
        in
        if admitted then begin
          Atomic.set w.heartbeat (cfg.now ());
          let d = Chaos.decide chaos ~ordinal:(Atomic.fetch_and_add svc.chaos_ordinal 1) in
          if d.Chaos.kill then begin
            locked svc (fun () -> svc.stats.chaos_kills <- svc.stats.chaos_kills + 1);
            raise Chaos.Killed
          end;
          if d.Chaos.stall > 0.0 then begin
            locked svc (fun () -> svc.stats.chaos_stalls <- svc.stats.chaos_stalls + 1);
            (* no heartbeat while stalled: to the watchdog this is a wedge *)
            interruptible_sleep svc ~token d.Chaos.stall
          end;
          let response =
            if U.Cancel.cancelled token then
              Error
                (Exec_error.Cancelled { stratum = -1; elapsed = cfg.now () -. ticket.submitted_at })
            else if d.Chaos.budget_fault then begin
              locked svc (fun () ->
                  svc.stats.chaos_budget_faults <- svc.stats.chaos_budget_faults + 1);
              Error
                (Exec_error.Budget_exceeded
                   {
                     kind = Exec_error.Deadline;
                     stratum = 0;
                     iterations = 0;
                     elapsed = cfg.now () -. now;
                   })
            end
            else begin
              (* recompute what is left of the deadline: queueing time was
                 already charged above, a stall is charged here *)
              let remaining =
                Option.map (fun d -> Float.max 0.0 (d -. cfg.now ())) deadline
              in
              let run_cfg = Session.batch_config cfg.interp ticket.id in
              let run_cfg =
                {
                  run_cfg with
                  Interp.budget =
                    Budget.constrain run_cfg.Interp.budget ?timeout:remaining ~cancel:token ();
                }
              in
              try
                let result =
                  match payload with
                  | Run { compiled; facts; outputs } ->
                      Session.run ~config:run_cfg
                        ~provenance:(Registry.create svc.ladder.(r))
                        compiled ~facts ?outputs ()
                  | Exec f -> f ~rung:svc.ladder.(r) ~config:run_cfg
                in
                let result =
                  if d.Chaos.nan then begin
                    let result, did = poison_result result in
                    if did then
                      locked svc (fun () -> svc.stats.chaos_nans <- svc.stats.chaos_nans + 1);
                    result
                  end
                  else result
                in
                match result_non_finite result with
                | Some what -> Error (Exec_error.Non_finite { what })
                | None -> Ok result
              with Session.Error e -> Error e
            end
          in
          Atomic.set w.heartbeat (cfg.now ());
          handle r response
        end
  and handle r response =
    match response with
    | Ok _ ->
        Breaker.record_success svc.breakers.(r);
        complete svc w my_gen ticket response ~rung_idx:r
    | Error e when Exec_error.is_degradable e ->
        Breaker.record_failure svc.breakers.(r);
        if r < last_rung then attempt (r + 1)
        else complete svc w my_gen ticket response ~rung_idx:r
    | Error (Exec_error.Cancelled _) -> (
        (* Either the watchdog decided we were wedged — requeue the request
           against its retry budget and free this worker — or a stale token
           fired after ownership moved; in both cases the mutex decides. *)
        let verdict =
          locked svc (fun () ->
              if not (owns_locked w my_gen ticket) then `Abandoned
              else if w.watchdog_cancelled then begin
                w.watchdog_cancelled <- false;
                w.current <- None;
                if ticket.retries_used >= cfg.max_retries then `Exhausted
                else begin
                  requeue_locked svc ticket;
                  `Requeued
                end
              end
              else `Terminal)
        in
        match verdict with
        | `Exhausted ->
            locked svc (fun () ->
                if ticket.outcome = None then
                  finish_locked svc ticket
                    (Error
                       (Exec_error.Worker_lost { worker = w.slot; attempts = ticket.attempts }))
                    ~rung_idx:ticket.last_rung)
        | `Requeued | `Abandoned -> ()
        | `Terminal -> complete svc w my_gen ticket response ~rung_idx:r)
    | Error e when Exec_error.is_transient e ->
        let can_retry =
          locked svc (fun () ->
              if (not (owns_locked w my_gen ticket)) || ticket.retries_used >= cfg.max_retries
              then false
              else begin
                ticket.retries_used <- ticket.retries_used + 1;
                svc.stats.retries <- svc.stats.retries + 1;
                true
              end)
        in
        if can_retry then begin
          let n = ticket.retries_used in
          let backoff =
            Float.min cfg.backoff_cap
              (cfg.backoff_base *. Float.pow 2.0 (float_of_int (n - 1)))
            *. (0.5 +. U.Rng.float jitter)
          in
          interruptible_sleep svc ~heartbeat:w backoff;
          attempt r
        end
        else complete svc w my_gen ticket response ~rung_idx:r
    | Error _ -> complete svc w my_gen ticket response ~rung_idx:r
  in
  attempt 0

(* ---- worker & watchdog loops ------------------------------------------------------ *)

let claim svc w my_gen =
  locked svc (fun () ->
      let rec wait () =
        if w.generation <> my_gen then None
        else if not (Queue.is_empty svc.queue) then begin
          let ticket = Queue.pop svc.queue in
          ticket.epoch <- ticket.epoch + 1;
          w.watchdog_cancelled <- false;
          w.current <- Some (ticket, U.Cancel.create ());
          Atomic.set w.heartbeat (svc.config.now ());
          Some ticket
        end
        else if svc.stopping then None
        else begin
          Condition.wait svc.nonempty svc.mutex;
          wait ()
        end
      in
      wait ())

let rec worker_loop svc w my_gen =
  match claim svc w my_gen with
  | None -> ()
  | Some ticket ->
      execute svc w my_gen ticket;
      worker_loop svc w my_gen

(* Requires the mutex (or single-threaded startup). *)
let spawn_worker_locked svc w =
  let my_gen = w.generation in
  svc.stats.domains_spawned <- svc.stats.domains_spawned + 1;
  Domain.spawn (fun () ->
      (* Chaos kills and unexpected exceptions end the domain without
         completing its request; the tombstone is what the watchdog sees. *)
      (try worker_loop svc w my_gen with _ -> ());
      Atomic.set w.alive false)

(* The worker under [w] is gone (domain exited or wedged past grace):
   retire its domain, respawn a replacement, and recover the in-flight
   request.  Requires the mutex. *)
let declare_lost_locked svc w (ticket : ticket) =
  svc.stats.workers_lost <- svc.stats.workers_lost + 1;
  w.current <- None;
  w.generation <- w.generation + 1;
  (match w.domain with
  | Some d -> svc.dead_domains <- d :: svc.dead_domains
  | None -> ());
  w.domain <- None;
  w.watchdog_cancelled <- false;
  if not svc.stopping then begin
    Atomic.set w.alive true;
    Atomic.set w.heartbeat (svc.config.now ());
    w.domain <- Some (spawn_worker_locked svc w);
    svc.stats.respawns <- svc.stats.respawns + 1
  end;
  if ticket.outcome = None then begin
    if ticket.retries_used >= svc.config.max_retries || svc.stopping then
      finish_locked svc ticket
        (Error (Exec_error.Worker_lost { worker = w.slot; attempts = ticket.attempts }))
        ~rung_idx:ticket.last_rung
    else requeue_locked svc ticket
  end

let watchdog_scan svc =
  let cfg = svc.config in
  locked svc (fun () ->
      Array.iter
        (fun w ->
          match w.current with
          | None -> ()
          | Some (ticket, token) ->
              if not (Atomic.get w.alive) then declare_lost_locked svc w ticket
              else begin
                let stale = cfg.now () -. Atomic.get w.heartbeat in
                if stale > cfg.heartbeat_timeout then
                  if not w.watchdog_cancelled then begin
                    w.watchdog_cancelled <- true;
                    svc.stats.watchdog_cancels <- svc.stats.watchdog_cancels + 1;
                    U.Cancel.cancel token
                  end
                  else if stale > cfg.heartbeat_timeout +. cfg.lost_grace then
                    (* the cancel went unheeded: wedged beyond recovery *)
                    declare_lost_locked svc w ticket
              end)
        svc.workers)

let rec watchdog_loop svc interval =
  interruptible_sleep svc interval;
  if not svc.stopping then begin
    watchdog_scan svc;
    watchdog_loop svc interval
  end

(* ---- public API ------------------------------------------------------------------- *)

let create ?(config = default_config ()) (spec : Registry.spec) : t =
  if config.jobs < 1 then invalid_arg "Service.create: jobs must be >= 1";
  if config.queue_depth < 0 then invalid_arg "Service.create: queue_depth must be >= 0";
  let ladder = Array.of_list (Registry.degradation_ladder spec) in
  let svc =
    {
      config;
      spec;
      ladder;
      breakers =
        Array.map
          (fun _ ->
            Breaker.create ~threshold:config.breaker_threshold
              ~cooldown:config.breaker_cooldown ~now:config.now ())
          ladder;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      done_cond = Condition.create ();
      queue = Queue.create ();
      chaos = config.chaos;
      chaos_ordinal = Atomic.make 0;
      next_id = 0;
      stopping = false;
      workers =
        Array.init config.jobs (fun slot ->
            {
              slot;
              generation = 0;
              domain = None;
              heartbeat = Atomic.make (config.now ());
              alive = Atomic.make true;
              current = None;
              watchdog_cancelled = false;
            });
      watchdog = None;
      dead_domains = [];
      stats = empty_stats ();
    }
  in
  Array.iter (fun w -> w.domain <- Some (spawn_worker_locked svc w)) svc.workers;
  (match config.watchdog_interval with
  | Some interval when interval > 0.0 ->
      svc.stats.domains_spawned <- svc.stats.domains_spawned + 1;
      svc.watchdog <- Some (Domain.spawn (fun () -> watchdog_loop svc interval))
  | _ -> ());
  svc

(** Swap the fault-injection config of a running service (tests/bench). *)
let set_chaos svc chaos = locked svc (fun () -> svc.chaos <- chaos)

let ladder svc = Array.to_list svc.ladder
let breaker_states svc = Array.to_list (Array.map Breaker.state_name svc.breakers)

(** Submit a payload.  Never blocks and never raises: an admission
    rejection (queue full / too old / service stopping) returns a ticket
    whose outcome is already [Error (Overloaded _)]. *)
let submit_payload svc (payload : payload) : ticket =
  locked svc (fun () ->
      let now = svc.config.now () in
      let id = svc.next_id in
      svc.next_id <- id + 1;
      svc.stats.submitted <- svc.stats.submitted + 1;
      let ticket =
        {
          id;
          submitted_at = now;
          payload = Some payload;
          epoch = 0;
          attempts = 0;
          retries_used = 0;
          requeues = 0;
          last_rung = 0;
          outcome = None;
        }
      in
      let depth = Queue.length svc.queue in
      let oldest_age =
        if Queue.is_empty svc.queue then 0.0 else now -. (Queue.peek svc.queue).submitted_at
      in
      let age_exceeded =
        match svc.config.max_queue_age with Some a -> oldest_age > a | None -> false
      in
      if svc.stopping || depth >= svc.config.queue_depth || age_exceeded then begin
        svc.stats.shed <- svc.stats.shed + 1;
        finish_locked svc ticket
          (Error (Exec_error.Overloaded { depth; age = oldest_age }))
          ~rung_idx:0
      end
      else begin
        svc.stats.accepted <- svc.stats.accepted + 1;
        Queue.push ticket svc.queue;
        Condition.signal svc.nonempty
      end;
      ticket)

(** Submit a one-shot query. *)
let submit svc ?outputs ?(facts = []) (compiled : Session.compiled) : ticket =
  submit_payload svc (Run { compiled; facts; outputs })

(** Submit an opaque execution (see {!payload}): it runs on a worker domain
    under the service's deadline/retry/chaos supervision with the granted
    rung and per-attempt config passed in. *)
let submit_exec svc (f : rung:Registry.spec -> config:Interp.config -> Session.result) :
    ticket =
  submit_payload svc (Exec f)

(** Block until the ticket's terminal outcome. *)
let await svc (ticket : ticket) : outcome =
  locked svc (fun () ->
      while ticket.outcome = None do
        Condition.wait svc.done_cond svc.mutex
      done;
      Option.get ticket.outcome)

(** Non-blocking outcome check. *)
let poll svc (ticket : ticket) : outcome option = locked svc (fun () -> ticket.outcome)

(** Snapshot of the counters (plus live breaker-open total). *)
let stats svc : stats =
  locked svc (fun () ->
      let s = svc.stats in
      {
        s with
        breaker_opens = Array.fold_left (fun acc b -> acc + Breaker.opens b) 0 svc.breakers;
      })

let queue_length svc = locked svc (fun () -> Queue.length svc.queue)

(** Stop accepting, drain the queue, join every domain ever spawned
    (workers, replacements, watchdog), then fail whatever request could
    not be served with a typed [Cancelled].  After [shutdown] returns, the
    domain count is back to its pre-[create] baseline.  Idempotent. *)
let shutdown svc =
  let to_join =
    locked svc (fun () ->
        svc.stopping <- true;
        Condition.broadcast svc.nonempty;
        let ds =
          List.filter_map Fun.id (Array.to_list (Array.map (fun w -> w.domain) svc.workers))
          @ svc.dead_domains
          @ (match svc.watchdog with Some d -> [ d ] | None -> [])
        in
        Array.iter (fun w -> w.domain <- None) svc.workers;
        svc.dead_domains <- [];
        svc.watchdog <- None;
        ds)
  in
  List.iter
    (fun d ->
      Domain.join d;
      locked svc (fun () -> svc.stats.domains_joined <- svc.stats.domains_joined + 1))
    to_join;
  (* Whatever is left had no worker to serve it (all died while stopping). *)
  locked svc (fun () ->
      let fail (ticket : ticket) =
        if ticket.outcome = None then
          finish_locked svc ticket
            (Error (Exec_error.Cancelled { stratum = -1; elapsed = 0.0 }))
            ~rung_idx:ticket.last_rung
      in
      Queue.iter fail svc.queue;
      Queue.clear svc.queue;
      Array.iter
        (fun w ->
          match w.current with
          | Some (ticket, _) ->
              w.current <- None;
              fail ticket
          | None -> ())
        svc.workers)

(** [with_service ?config spec f]: create, run [f], always shut down. *)
let with_service ?config spec f =
  let svc = create ?config spec in
  Fun.protect ~finally:(fun () -> shutdown svc) (fun () -> f svc)
