(** Fault-injection configuration for the service runtime.

    Chaos engineering for the query engine: with a {!t} installed, every
    execution attempt rolls seeded dice and may be hit by one or more
    injected faults — the worker domain dies mid-request, the attempt
    stalls without heartbeating, the result comes back as a synthetic
    [Budget_exceeded], or its output probabilities are poisoned with NaN.
    The service under chaos must keep accepting and answering: tests and
    [bench service] use this to prove every submitted request still gets
    exactly one terminal outcome while faults fire.

    Decisions are drawn from {!Scallop_utils.Rng.substream} of [seed]
    keyed by a per-attempt ordinal, so a given (seed, ordinal) pair always
    rolls the same faults regardless of which worker executes the attempt.
    Probabilities are independent per axis; [none] (all zeros) is the
    production configuration and short-circuits to no RNG work at all. *)

type t = {
  kill_prob : float;  (** worker domain dies mid-attempt (simulated crash) *)
  latency_prob : float;  (** attempt stalls for [latency] s without heartbeating *)
  latency : float;  (** injected stall duration, seconds *)
  budget_fault_prob : float;  (** attempt returns a synthetic [Budget_exceeded] *)
  nan_prob : float;  (** result probabilities poisoned with NaN *)
  seed : int;  (** root of the decision substreams *)
}

let none =
  {
    kill_prob = 0.0;
    latency_prob = 0.0;
    latency = 0.0;
    budget_fault_prob = 0.0;
    nan_prob = 0.0;
    seed = 0;
  }

(** No fault can ever fire under this configuration. *)
let is_none t =
  t.kill_prob <= 0.0 && t.latency_prob <= 0.0 && t.budget_fault_prob <= 0.0
  && t.nan_prob <= 0.0

(** Raised inside a worker to simulate its domain crashing mid-request: it
    unwinds the whole worker loop, the domain exits without completing the
    in-flight request, and only the supervisor's watchdog can recover it. *)
exception Killed

(** The faults one attempt is subjected to. *)
type decision = {
  kill : bool;
  stall : float;  (** 0 when no latency was injected *)
  budget_fault : bool;
  nan : bool;
}

let no_faults = { kill = false; stall = 0.0; budget_fault = false; nan = false }

(** Roll the dice for attempt [ordinal].  Pure in (config, ordinal). *)
let decide t ~ordinal : decision =
  if is_none t then no_faults
  else begin
    let rng = Scallop_utils.Rng.substream (Scallop_utils.Rng.create t.seed) ordinal in
    (* Draw all four axes unconditionally so each axis sees a fixed stream
       position — changing one probability never re-shuffles the others. *)
    let kill_roll = Scallop_utils.Rng.float rng in
    let latency_roll = Scallop_utils.Rng.float rng in
    let budget_roll = Scallop_utils.Rng.float rng in
    let nan_roll = Scallop_utils.Rng.float rng in
    {
      kill = kill_roll < t.kill_prob;
      stall = (if latency_roll < t.latency_prob then t.latency else 0.0);
      budget_fault = budget_roll < t.budget_fault_prob;
      nan = nan_roll < t.nan_prob;
    }
  end
