(** The [scallop serve] line protocol, parsed totally.

    One request per line; this module classifies a raw line into a typed
    {!request} or a typed {!Scallop_core.Exec_error.t} — it never raises
    and never falls through to undefined behavior, whatever bytes arrive.
    The serving loop can therefore answer {e every} line with either the
    verb's effect or a [done <id> error …] reply: junk bytes, oversized
    lines, and truncated verb arguments are all protocol errors, not
    crashes or silent drops.

    Anything that does not start with a known verb is a {!Run} request —
    the legacy one-shot path that compiles the line as a Scallop program
    (whose own parser produces its own typed diagnostics). *)

open Scallop_core

type request =
  | Open of { sid : string; expect_hash : string option; program : string }
  | Assert of { sid : string; prob : float option; pred : string; tuple : Tuple.t }
  | Retract of { sid : string; pred : string; tuple : Tuple.t }
  | Query of { sid : string; outputs : string list option }
  | Close of { sid : string }
  | Stats
  | Scrub
  | Repl_status
  | Repl_promote of { epoch : int option }
  | Run of { program : string }  (** legacy one-shot query *)

let invalid_input fmt = Session.invalid_input fmt

(* ---- lexical helpers ----------------------------------------------------------- *)

(* The k-th-token-onward suffix of a protocol line (verbs keep raw text —
   programs and fact atoms contain spaces). *)
let drop_tokens k s =
  let n = String.length s in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec skip_tok i = if i < n && s.[i] <> ' ' then skip_tok (i + 1) else i in
  let rec go k i = if k = 0 then i else go (k - 1) (skip_ws (skip_tok i)) in
  let i = go k (skip_ws 0) in
  String.sub s i (n - i)

(* Fact atoms for the stateful verbs: "0.9::edge(0, 1)" or "edge(0, 1)".
   Values: true/false, integers (i32), floats (f64), "quoted" or bare
   strings; [Incr] coerces them to the relation's declared column types. *)
let parse_value (s : string) : Value.t =
  let s = String.trim s in
  if String.equal s "true" then Value.bool true
  else if String.equal s "false" then Value.bool false
  else
    match int_of_string_opt s with
    | Some n -> Value.int Value.I32 n
    | None -> (
        match float_of_string_opt s with
        | Some f -> Value.float Value.F64 f
        | None ->
            let n = String.length s in
            if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
              Value.string (String.sub s 1 (n - 2))
            else Value.string s)

let parse_fact_atom (s : string) : float option * string * Tuple.t =
  let s = String.trim s in
  let prob, rest =
    match String.index_opt s ':' with
    | Some i when i + 1 < String.length s && s.[i + 1] = ':' -> (
        let p = String.sub s 0 i in
        match float_of_string_opt p with
        | Some f -> (Some f, String.sub s (i + 2) (String.length s - i - 2))
        | None -> invalid_input "bad probability %S in fact %S" p s)
    | _ -> (None, s)
  in
  let n = String.length rest in
  match String.index_opt rest '(' with
  | None -> invalid_input "bad fact %S: expected pred(v1, ...)" s
  | Some _ when n = 0 || rest.[n - 1] <> ')' ->
      invalid_input "bad fact %S: missing closing paren" s
  | Some l ->
      let pred = String.trim (String.sub rest 0 l) in
      if String.equal pred "" then invalid_input "bad fact %S: empty predicate" s;
      let inner = String.sub rest (l + 1) (n - l - 2) in
      let vals =
        if String.trim inner = "" then []
        else List.map parse_value (String.split_on_char ',' inner)
      in
      (prob, pred, Tuple.of_list vals)

let max_sid_len = 256

let check_sid sid =
  if String.length sid > max_sid_len then
    invalid_input "session id of %d bytes exceeds the %d-byte limit" (String.length sid)
      max_sid_len

(* ---- the parser ------------------------------------------------------------------ *)

let default_max_line = 1 lsl 20

(** [parse line] classifies one protocol line.  Total: every possible
    [line] yields either a request or a typed error — lines over
    [max_line] bytes, lines containing control bytes (tab excepted; a
    newline cannot occur in a line), and known verbs with missing,
    truncated, or malformed arguments are all [Error _].  Unknown leading
    tokens fall through to {!Run}. *)
let parse ?(max_line = default_max_line) (line : string) : (request, Exec_error.t) result =
  try
    if String.length line > max_line then
      invalid_input "request line of %d bytes exceeds the %d-byte limit"
        (String.length line) max_line;
    String.iter
      (fun c ->
        let code = Char.code c in
        if code < 32 && not (Char.equal c '\t') then
          invalid_input "request contains control byte 0x%02x" code)
      line;
    let words =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun w -> not (String.equal w ""))
    in
    Ok
      (match words with
      | [] -> invalid_input "empty request"
      | "open" :: sid :: _ ->
          check_sid sid;
          let rest = String.trim (drop_tokens 2 line) in
          let expect_hash, program =
            if String.length rest >= 5 && String.equal (String.sub rest 0 5) "hash=" then begin
              let i =
                match String.index_opt rest ' ' with
                | Some i -> i
                | None -> String.length rest
              in
              let h = String.sub rest 5 (i - 5) in
              if String.equal h "" then invalid_input "open %s: empty hash= argument" sid;
              (Some h, String.sub rest i (String.length rest - i))
            end
            else (None, rest)
          in
          Open { sid; expect_hash; program }
      | [ "open" ] -> invalid_input "open: missing session id"
      | "assert" :: sid :: _ :: _ ->
          check_sid sid;
          let prob, pred, tuple = parse_fact_atom (drop_tokens 2 line) in
          Assert { sid; prob; pred; tuple }
      | "assert" :: rest ->
          invalid_input "assert: expected 'assert <sid> [<prob>::]<pred>(<args>)', got %d argument%s"
            (List.length rest)
            (if List.length rest = 1 then "" else "s")
      | "retract" :: sid :: _ :: _ ->
          check_sid sid;
          let prob, pred, tuple = parse_fact_atom (drop_tokens 2 line) in
          (match prob with
          | Some _ -> invalid_input "retract takes no probability"
          | None -> ());
          Retract { sid; pred; tuple }
      | "retract" :: rest ->
          invalid_input "retract: expected 'retract <sid> <pred>(<args>)', got %d argument%s"
            (List.length rest)
            (if List.length rest = 1 then "" else "s")
      | "query" :: sid :: rest ->
          check_sid sid;
          Query { sid; outputs = (match rest with [] -> None | l -> Some l) }
      | [ "query" ] -> invalid_input "query: missing session id"
      | [ "close"; sid ] ->
          check_sid sid;
          Close { sid }
      | "close" :: rest ->
          invalid_input "close: expected 'close <sid>', got %d argument%s" (List.length rest)
            (if List.length rest = 1 then "" else "s")
      | [ "stats" ] -> Stats
      | "stats" :: _ -> invalid_input "stats takes no arguments"
      | [ "scrub" ] -> Scrub
      | "scrub" :: _ -> invalid_input "scrub takes no arguments"
      | [ "repl"; "status" ] -> Repl_status
      | [ "repl"; "promote" ] -> Repl_promote { epoch = None }
      | [ "repl"; "promote"; arg ]
        when String.length arg > 6 && String.equal (String.sub arg 0 6) "epoch=" -> (
          match int_of_string_opt (String.sub arg 6 (String.length arg - 6)) with
          | Some e when e > 0 -> Repl_promote { epoch = Some e }
          | _ -> invalid_input "repl promote: bad epoch %S" arg)
      | "repl" :: _ ->
          invalid_input "repl: expected 'repl status' or 'repl promote [epoch=N]'"
      | _ -> Run { program = line })
  with Session.Error e -> Error e
