(** A circuit breaker guarding one rung of the provenance degradation
    ladder.

    The service keeps one breaker per ladder rung (see
    {!Scallop_core.Registry.degradation_ladder}).  While a rung keeps
    exhausting budgets, paying for the doomed high-fidelity attempt on
    every request just burns the request's deadline — the breaker
    remembers, and once it {e opens} the service skips straight to the
    cheaper rung without trying.

    Classic three-state machine, timed on an injectable clock:

    - [Closed]: requests flow; [threshold] {e consecutive} degradable
      failures ({!Scallop_core.Exec_error.is_degradable}) open it.  Any
      success resets the streak.
    - [Open]: {!admit} refuses for [cooldown] seconds from the moment it
      opened; after that the next {!admit} moves to half-open and lets the
      caller through as a probe.
    - [Half_open]: attempts are admitted; the first verdict decides —
      a success closes the breaker (fidelity recovered), a failure re-opens
      it for another full cooldown.  Concurrent probes are allowed (each
      worker that asks gets through); their verdicts are applied in arrival
      order, which keeps the machine lock-simple and loses nothing: a
      success still closes it, a failure still re-opens it.

    All operations are thread-safe (one mutex per breaker) and O(1). *)

type state =
  | Closed of { mutable failures : int }  (** consecutive failure streak *)
  | Open of { until : float }  (** refuse until this clock reading *)
  | Half_open

type t = {
  threshold : int;
  cooldown : float;
  now : unit -> float;  (** injectable clock (tests drive it manually) *)
  mutex : Mutex.t;
  mutable state : state;
  mutable opens : int;  (** times the breaker tripped, for stats *)
}

let create ?(threshold = 3) ?(cooldown = 5.0) ~now () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  {
    threshold;
    cooldown;
    now;
    mutex = Mutex.create ();
    state = Closed { failures = 0 };
    opens = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(** May an attempt run at this rung right now?  Moves [Open] to
    [Half_open] once the cooldown has elapsed. *)
let admit t =
  locked t (fun () ->
      match t.state with
      | Closed _ | Half_open -> true
      | Open { until } ->
          if t.now () >= until then begin
            t.state <- Half_open;
            true
          end
          else false)

let trip t =
  t.state <- Open { until = t.now () +. t.cooldown };
  t.opens <- t.opens + 1

(** The attempt at this rung succeeded: close (from half-open) or reset the
    failure streak. *)
let record_success t =
  locked t (fun () ->
      match t.state with
      | Closed c -> c.failures <- 0
      | Half_open -> t.state <- Closed { failures = 0 }
      | Open _ -> () (* stale verdict from before the trip; the cooldown stands *))

(** The attempt at this rung failed degradably (budget exhausted). *)
let record_failure t =
  locked t (fun () ->
      match t.state with
      | Closed c ->
          c.failures <- c.failures + 1;
          if c.failures >= t.threshold then trip t
      | Half_open -> trip t
      | Open _ -> ())

(** True while the breaker refuses immediately (open, cooldown running). *)
let is_open t =
  locked t (fun () ->
      match t.state with
      | Open { until } -> t.now () < until
      | Closed _ | Half_open -> false)

let opens t = locked t (fun () -> t.opens)

let state_name t =
  locked t (fun () ->
      match t.state with
      | Closed _ -> "closed"
      | Open _ -> "open"
      | Half_open -> "half-open")
