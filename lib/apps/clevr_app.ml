(** CLEVR: compositional visual question answering (paper Sec. 6.1,
    Appendix C.7).

    The Scallop program (Fig. 32) interprets CLEVR-DSL programs against a
    probabilistic scene graph.  Per-object attribute classifiers are trained
    end-to-end from question answers; the DSL program and spatial relations
    are structured inputs (see DESIGN.md substitutions). *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
module Cv = Scallop_data.Clevr

type model = {
  shape_mlp : Layers.Mlp.t;
  color_mlp : Layers.Mlp.t;
  material_mlp : Layers.Mlp.t;
  size_mlp : Layers.Mlp.t;
  compiled : Session.compiled;
}

let create_model ~rng ~dim =
  {
    shape_mlp = Layers.Mlp.create rng [ dim; 32; Array.length Cv.shapes ];
    color_mlp = Layers.Mlp.create rng [ dim; 32; Array.length Cv.colors ];
    material_mlp = Layers.Mlp.create rng [ dim; 32; Array.length Cv.materials ];
    size_mlp = Layers.Mlp.create rng [ dim; 32; Array.length Cv.sizes ];
    compiled = Session.compile Programs.clevr;
  }

let params m =
  Layers.Mlp.params m.shape_mlp @ Layers.Mlp.params m.color_mlp
  @ Layers.Mlp.params m.material_mlp @ Layers.Mlp.params m.size_mlp

(* ---- question encoding: DSL AST → expression facts ------------------------- *)

let encode_question (q : Cv.question) : (string * Tuple.t) list * int =
  let facts = ref [] in
  let next = ref 0 in
  let fresh () =
    let e = !next in
    incr next;
    e
  in
  let emit pred vals = facts := (pred, Tuple.of_list vals) :: !facts in
  let us n = Value.int Value.USize n in
  let rec enc_filter (f : Cv.filter_expr) : int =
    match f with
    | Cv.Scene ->
        let e = fresh () in
        emit "scene_expr" [ us e ];
        e
    | Cv.Filter_shape (f, v) ->
        let fe = enc_filter f in
        let e = fresh () in
        emit "filter_shape_expr" [ us e; us fe; Value.string v ];
        e
    | Cv.Filter_color (f, v) ->
        let fe = enc_filter f in
        let e = fresh () in
        emit "filter_color_expr" [ us e; us fe; Value.string v ];
        e
    | Cv.Filter_material (f, v) ->
        let fe = enc_filter f in
        let e = fresh () in
        emit "filter_material_expr" [ us e; us fe; Value.string v ];
        e
    | Cv.Filter_size (f, v) ->
        let fe = enc_filter f in
        let e = fresh () in
        emit "filter_size_expr" [ us e; us fe; Value.string v ];
        e
    | Cv.Relate (f, r) ->
        let fe = enc_filter f in
        let e = fresh () in
        emit "relate_expr" [ us e; us fe; Value.string r ];
        e
  in
  let count_of f =
    let fe = enc_filter f in
    let e = fresh () in
    emit "count_expr" [ us e; us fe ];
    e
  in
  let root =
    match q with
    | Cv.Count f -> count_of f
    | Cv.Exists f ->
        let fe = enc_filter f in
        let e = fresh () in
        emit "exists_expr" [ us e; us fe ];
        e
    | Cv.Query_attr (attr, f) ->
        let fe = enc_filter f in
        let e = fresh () in
        emit ("query_" ^ attr ^ "_expr") [ us e; us fe ];
        e
    | Cv.Greater_than (a, b) ->
        let ea = count_of a and eb = count_of b in
        let e = fresh () in
        emit "greater_than_expr" [ us e; us ea; us eb ];
        e
    | Cv.Less_than (a, b) ->
        let ea = count_of a and eb = count_of b in
        let e = fresh () in
        emit "less_than_expr" [ us e; us ea; us eb ];
        e
    | Cv.Equal_count (a, b) ->
        let ea = count_of a and eb = count_of b in
        let e = fresh () in
        emit "equal_expr" [ us e; us ea; us eb ];
        e
  in
  emit "root_expr" [ us root ];
  (List.rev !facts, root)

(* ---- candidate answers -------------------------------------------------------- *)

let answer_candidates : string array =
  Array.concat
    [
      Array.init 7 string_of_int;
      [| "true"; "false" |];
      Cv.shapes; Cv.colors; Cv.materials; Cv.sizes;
    ]

let candidate_tuples = Array.map (fun s -> Tuple.of_list [ Value.string s ]) answer_candidates

let candidate_index s =
  let rec go i = if i >= Array.length answer_candidates then None
    else if answer_candidates.(i) = s then Some i else go (i + 1) in
  go 0

(* ---- forward ------------------------------------------------------------------- *)

let attr_tuples oid values =
  Array.map (fun v -> Tuple.of_list [ Value.int Value.USize oid; Value.string v ]) values

let forward ?(spec = Registry.Diff_max_min_prob) (m : model) (s : Cv.sample) : Autodiff.t =
  let per_object pred mlp values images =
    List.mapi
      (fun oid img ->
        let probs = Layers.Mlp.classify mlp (Autodiff.const img) in
        Scallop_layer.dense_mapping ~pred ~tuples:(attr_tuples oid values) ~probs
          ~mutually_exclusive:true)
      images
  in
  let inputs =
    per_object "shape" m.shape_mlp Cv.shapes s.Cv.shape_images
    @ per_object "color" m.color_mlp Cv.colors s.Cv.color_images
    @ per_object "material" m.material_mlp Cv.materials s.Cv.material_images
    @ per_object "size" m.size_mlp Cv.sizes s.Cv.size_images
  in
  let question_facts, _root = encode_question s.Cv.question in
  let static_facts =
    List.map (fun (o : Cv.obj) -> ("obj", Tuple.of_list [ Value.int Value.USize o.Cv.oid ])) s.Cv.scene.Cv.objects
    @ List.map
        (fun (r, a, b) ->
          ("relate", Tuple.of_list [ Value.string r; Value.int Value.USize a; Value.int Value.USize b ]))
        (Cv.relations_of s.Cv.scene)
    @ question_facts
  in
  Scallop_layer.forward ~spec ~compiled:m.compiled ~static_facts ~inputs ~out_pred:"result"
    ~candidates:candidate_tuples ()

let predict ?spec m s =
  let y = Autodiff.value (forward ?spec m s) in
  answer_candidates.(Nd.argmax_row y 0)

let train_and_eval ?(dim = 12) ?(noise = 0.35) (config : Common.config) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Cv.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (params m) in
  let train_data = Cv.dataset data config.Common.n_train in
  let test_data = Cv.dataset data config.Common.n_test in
  let spec = config.Common.provenance in
  Common.run_task ~task:"CLEVR" ~config ~train_data ~test_data ~opt
    ~train_step:(fun (s : Cv.sample) ->
      let y = forward ~spec m s in
      match candidate_index (Cv.answer_to_string s.Cv.answer) with
      | Some idx ->
          Common.bce y (Autodiff.const (Common.one_hot (Array.length answer_candidates) idx))
      | None -> Autodiff.const (Nd.scalar 0.0))
    ~eval_sample:(fun s -> predict ~spec m s = Cv.answer_to_string s.Cv.answer)
    ()
