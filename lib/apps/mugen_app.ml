(** Mugen: video–text alignment and retrieval (paper Sec. 6.1, Appendix
    C.6).

    The frame classifier predicts the (action, modifier) class of each video
    frame; the Scallop program (Fig. 31) checks whether the text's event
    sequence matches the recognized frame sequence.  Trained contrastively:
    aligned pairs push [match()] toward 1, misaligned toward 0.  Retrieval
    picks the pool element with the highest match probability. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
module Mg = Scallop_data.Mugen

let class_string (a, m) = a ^ "_" ^ m

type model = { mlp : Layers.Mlp.t; compiled : Session.compiled }

let create_model ~rng ~dim =
  {
    mlp = Layers.Mlp.create rng [ dim; 48; Mg.num_classes ];
    compiled = Session.compile Programs.mugen;
  }

let action_tuples vid =
  Array.map
    (fun c -> Tuple.of_list [ Value.int Value.USize vid; Value.string (class_string c) ])
    Mg.classes

(** Match probability of a (video frames, text) pair. *)
let score ?(spec = Registry.Diff_top_k_proofs 3) (m : model) ~(frame_images : Nd.t list)
    ~(text : (string * string) list) : Autodiff.t =
  let inputs =
    List.mapi
      (fun vid img ->
        let probs = Layers.Mlp.classify m.mlp (Autodiff.const img) in
        Scallop_layer.dense_mapping ~pred:"action" ~tuples:(action_tuples vid) ~probs
          ~mutually_exclusive:true)
      frame_images
  in
  let t_len = List.length text and v_len = List.length frame_images in
  let static_facts =
    List.mapi
      (fun tid c -> ("expr", Tuple.of_list [ Value.int Value.USize tid; Value.string (class_string c) ]))
      text
    @ [
        ("expr_start", Tuple.of_list [ Value.int Value.USize 0 ]);
        ("expr_end", Tuple.of_list [ Value.int Value.USize (t_len - 1) ]);
        ("action_start", Tuple.of_list [ Value.int Value.USize 0 ]);
        ("action_end", Tuple.of_list [ Value.int Value.USize v_len ]);
      ]
  in
  Scallop_layer.forward ~spec ~compiled:m.compiled ~static_facts ~inputs ~out_pred:"match"
    ~candidates:[| Tuple.unit |] ()

(** Fig. 19 interpretability: most likely (action, modifier) per frame. *)
let frame_predictions (m : model) (frame_images : Nd.t list) : (string * string) list =
  List.map
    (fun img ->
      let probs = Layers.Mlp.classify m.mlp (Autodiff.const img) in
      Mg.classes.(Nd.argmax_row (Autodiff.value probs) 0))
    frame_images

let train_and_eval ?(dim = 16) ?(noise = 0.4) ?(len = 6) (config : Common.config) :
    Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Mg.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train_data = Mg.dataset ~len data config.Common.n_train in
  let test_data = Mg.dataset ~len data config.Common.n_test in
  let spec = config.Common.provenance in
  Common.run_task ~task:"Mugen" ~config ~train_data ~test_data ~opt
    ~train_step:(fun (s : Mg.sample) ->
      let y = score ~spec m ~frame_images:s.Mg.frame_images ~text:s.Mg.text in
      let target = Nd.scalar (if s.Mg.aligned then 1.0 else 0.0) in
      Common.bce y (Autodiff.const target))
    ~eval_sample:(fun s ->
      let y = Nd.get1 (Autodiff.value (score ~spec m ~frame_images:s.Mg.frame_images ~text:s.Mg.text)) 0 in
      y > 0.5 = s.Mg.aligned)
    ()

(** Text-to-video retrieval accuracy over pools (paper's TVR task). *)
let retrieval_accuracy ?(spec = Registry.Diff_top_k_proofs 3) ?(pools = 20) ?(pool = 8)
    ?(len = 6) (data : Mg.t) (m : model) : float =
  let correct = ref 0 in
  for _ = 1 to pools do
    let target, distractors = Mg.retrieval_pool ~len ~pool data in
    let all = target :: distractors in
    let scores =
      List.map
        (fun (s : Mg.sample) ->
          Nd.get1 (Autodiff.value (score ~spec m ~frame_images:s.Mg.frame_images ~text:target.Mg.text)) 0)
        all
    in
    let best = ref 0 in
    List.iteri (fun i v -> if v > List.nth scores !best then best := i) scores;
    if !best = 0 then incr correct
  done;
  float_of_int !correct /. float_of_int pools
