(** CLUTRR: kinship reasoning from (synthetic) natural-language context
    (paper Sec. 6.1, Appendix C.5).

    Three settings from the appendix:
    - {e manually specified rules}: the composition KB is appended to the
      program as facts; the relation extractor is trained end-to-end,
    - {e rule learning} (CLUTRR-G): all 20³ composition facts carry
      learnable probabilities trained from ground-truth kinship graphs — the
      paper's ILP-style setting with the top-150 sampled per step,
    - systematic generalization (Fig. 18): train on chains k ∈ {2,3}, test
      on k ∈ 2..10. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
module Cl = Scallop_data.Clutrr

let program_with_kb () =
  let table = Lazy.force Cl.composition_table in
  let facts =
    List.map (fun (a, b, c) -> Fmt.str "(%d, %d, %d)" a b c) table |> String.concat ", "
  in
  Programs.clutrr ^ "\nrel composition = {" ^ facts ^ "}"

(** The bare program without the composition KB (for rule learning). *)
let program_without_kb () = Programs.clutrr

let relation_candidates =
  Array.init Cl.num_relations (fun r -> Tuple.of_list [ Value.int Value.USize r ])

let kinship_tuples sub obj =
  Array.init Cl.num_relations (fun r ->
      Tuple.of_list [ Value.int Value.USize r; Value.string sub; Value.string obj ])

type model = { mlp : Layers.Mlp.t; compiled : Session.compiled }

let create_model ~rng ~dim =
  {
    mlp = Layers.Mlp.create rng [ dim; 64; Cl.num_relations ];
    compiled = Session.compile (program_with_kb ());
  }

let forward ?(spec = Registry.Diff_top_k_proofs_me 3) (data : Cl.t) (m : model) (s : Cl.sample)
    : Autodiff.t =
  let inputs =
    List.map
      (fun ((_, sub, obj) as fact) ->
        let emb = Cl.sentence_embedding data fact in
        let probs = Layers.Mlp.classify m.mlp (Autodiff.const emb) in
        Scallop_layer.dense_mapping ~pred:"kinship" ~tuples:(kinship_tuples sub obj) ~probs
          ~mutually_exclusive:true)
      s.Cl.chain
  in
  let sub, obj = s.Cl.query in
  let static_facts =
    [ ("question", Tuple.of_list [ Value.string sub; Value.string obj ]) ]
  in
  Scallop_layer.forward ~spec ~compiled:m.compiled ~static_facts ~inputs ~out_pred:"answer"
    ~candidates:relation_candidates ()

let predict ?spec data m s = Nd.argmax_row (Autodiff.value (forward ?spec data m s)) 0

let train_and_eval ?(dim = 16) ?(noise = 0.4) ?(train_ks = [ 2; 3 ]) ?(test_k = 3)
    (config : Common.config) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Cl.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let per_k = max 1 (config.Common.n_train / List.length train_ks) in
  let train_data = List.concat_map (fun k -> Cl.dataset data ~k per_k) train_ks in
  let test_data = Cl.dataset data ~k:test_k config.Common.n_test in
  let spec = config.Common.provenance in
  Common.run_task ~task:"CLUTRR" ~config ~train_data ~test_data ~opt
    ~train_step:(fun (s : Cl.sample) ->
      let y = forward ~spec data m s in
      Common.bce y (Autodiff.const (Common.one_hot Cl.num_relations s.Cl.target)))
    ~eval_sample:(fun s -> predict ~spec data m s = s.Cl.target)
    ()

(** Fig. 18: accuracy per test chain length after training on short chains. *)
let systematic_generalization ?(dim = 16) ?(noise = 0.4) ?(train_ks = [ 2; 3 ])
    ?(test_ks = [ 2; 3; 4; 5; 6 ]) (config : Common.config) : (int * float) list =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Cl.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let per_k = max 1 (config.Common.n_train / List.length train_ks) in
  let train_data = List.concat_map (fun k -> Cl.dataset data ~k per_k) train_ks in
  let spec = config.Common.provenance in
  for _ = 1 to config.Common.epochs do
    List.iter
      (fun s ->
        let y = forward ~spec data m s in
        let loss = Common.bce y (Autodiff.const (Common.one_hot Cl.num_relations s.Cl.target)) in
        opt.Optim.zero_grad ();
        Autodiff.backward loss;
        opt.Optim.step ())
      train_data
  done;
  List.map
    (fun k ->
      let test = Cl.dataset data ~k config.Common.n_test in
      let correct = List.filter (fun s -> predict ~spec data m s = s.Cl.target) test in
      (k, float_of_int (List.length correct) /. float_of_int (List.length test)))
    test_ks

(* ---- CLUTRR-G: rule learning ------------------------------------------------ *)

(** Candidate composition facts with learnable probabilities; the
    ground-truth kinship graph is given (knowledge-graph setting) and only
    the composition weights train — ILP-style rule learning.  Candidates
    range over atomic relations for (r1, r2): the story chains hint atomic
    relations, so one composition step covers k=2 chains (8·8·20 = 1280
    candidates; the paper explores the full 20³ space with multinomial
    sampling of 150 — we keep the same explore/exploit mechanism on the
    smaller space). *)
type rule_model = {
  weights : Autodiff.t;
  compiled : Session.compiled;
  rng : Scallop_utils.Rng.t;
}

let num_atomic = 8

let candidate_composition_tuples =
  lazy
    (Array.init
       (num_atomic * num_atomic * Cl.num_relations)
       (fun i ->
         let r1 = i / (num_atomic * Cl.num_relations) in
         let r2 = i / Cl.num_relations mod num_atomic in
         let r3 = i mod Cl.num_relations in
         Tuple.of_list
           [ Value.int Value.USize r1; Value.int Value.USize r2; Value.int Value.USize r3 ]))

let create_rule_model ~rng =
  let n = num_atomic * num_atomic * Cl.num_relations in
  {
    weights = Autodiff.param (Nd.uniform rng (-3.0) (-2.0) [| 1; n |]);
    compiled = Session.compile (program_without_kb ());
    rng;
  }

(** Exploration mapping: half the budget exploits the current top weights,
    half explores uniformly (the paper's multinomial sampling of 150). *)
let explore_mapping ?(explore = true) ~k (rm : rule_model) probs =
  let tuples = Lazy.force candidate_composition_tuples in
  let n = Array.length tuples in
  let v = Scallop_tensor.Autodiff.value probs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare (Nd.get1 v b) (Nd.get1 v a)) idx;
  let exploit = Array.sub idx 0 (min (if explore then k / 2 else k) n) in
  let chosen = Hashtbl.create k in
  Array.iter (fun i -> Hashtbl.replace chosen i ()) exploit;
  if explore then
    while Hashtbl.length chosen < min k n do
      Hashtbl.replace chosen (Scallop_utils.Rng.int rm.rng n) ()
    done;
  let entries =
    Hashtbl.fold (fun i () acc -> (i, tuples.(i)) :: acc) chosen [] |> Array.of_list
  in
  { Scallop_layer.pred = "composition"; entries; probs; mutually_exclusive = false }

let rule_forward ?(spec = Registry.Diff_top_k_proofs 3) ?(sample_k = 150) ?(explore = true)
    (rm : rule_model) (s : Cl.sample) : Autodiff.t =
  let probs = Autodiff.sigmoid rm.weights in
  let comp_mapping = explore_mapping ~explore ~k:sample_k rm probs in
  let sub, obj = s.Cl.query in
  let static_facts =
    ("question", Tuple.of_list [ Value.string sub; Value.string obj ])
    :: List.map
         (fun (r, a, b) ->
           ( "kinship",
             Tuple.of_list [ Value.int Value.USize r; Value.string a; Value.string b ] ))
         s.Cl.chain
  in
  Scallop_layer.forward ~spec ~compiled:rm.compiled ~static_facts ~inputs:[ comp_mapping ]
    ~out_pred:"answer" ~candidates:relation_candidates ()

let train_and_eval_rule_learning ?(noise = 0.4) ?(train_ks = [ 2 ]) ?(test_k = 2)
    (config : Common.config) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Cl.create ~noise ~seed:(config.Common.seed + 1) () in
  let rm = create_rule_model ~rng in
  let opt = Optim.adam ~lr:(10.0 *. config.Common.lr) [ rm.weights ] in
  let per_k = max 1 (config.Common.n_train / List.length train_ks) in
  let train_data = List.concat_map (fun k -> Cl.dataset data ~k per_k) train_ks in
  let test_data = Cl.dataset data ~k:test_k config.Common.n_test in
  let spec = config.Common.provenance in
  Common.run_task ~task:"CLUTRR-G" ~config ~train_data ~test_data ~opt
    ~train_step:(fun (s : Cl.sample) ->
      let y = rule_forward ~spec rm s in
      Common.bce y (Autodiff.const (Common.one_hot Cl.num_relations s.Cl.target)))
    ~eval_sample:(fun s ->
      (* test-time: exploit the learned weights only *)
      Nd.argmax_row (Autodiff.value (rule_forward ~spec ~explore:false rm s)) 0 = s.Cl.target)
    ()
