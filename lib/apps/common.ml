(** Shared configuration, reporting and training utilities for the eight
    benchmark applications (paper Sec. 6.1).

    The training skeletons here are the {e fault-tolerant runtime} of the
    reproduction (DESIGN.md "Fault tolerance"):

    - {e crash-safe checkpointing}: with [?checkpoint], {!run_task} and
      {!run_task_batched} periodically snapshot parameters, optimizer state
      (Adam m/v/t or SGD velocity), RNG stream positions and the loss
      accumulators through {!Scallop_tensor.Serialize} into a
      {!Scallop_utils.Atomic_io} generation directory, and resume from the
      newest {e valid} snapshot on restart — a run killed at any step and
      resumed produces bit-identical final parameters to the uninterrupted
      run, and a corrupted latest snapshot falls back to the previous
      generation.
    - {e numeric guardrails}: every optimizer step goes through a guarded
      backward pass; an example (or minibatch) whose loss or gradients
      contain NaN/Inf is skipped and counted instead of poisoning the
      parameters, and [config.clip_grad] bounds the global gradient norm.
    - {e fault accounting}: quarantined/degraded example counts surface in
      {!report}. *)

open Scallop_tensor
open Scallop_core
module Faults = Scallop_utils.Faults

type config = {
  seed : int;
  provenance : Registry.spec;
  epochs : int;
  n_train : int;
  n_test : int;
  lr : float;
  clip_grad : float option;
      (** when set, clip the global gradient L2 norm to this value before
          every optimizer step *)
}

let default_config =
  {
    seed = 1234;
    provenance = Registry.Diff_top_k_proofs_me 3;
    epochs = 3;
    n_train = 256;
    n_test = 100;
    lr = 0.01;
    clip_grad = None;
  }

type report = {
  task : string;
  provenance : string;
  accuracy : float;  (** test accuracy in [0,1] *)
  epoch_time : float;  (** mean wall-clock seconds per training epoch *)
  losses : float list;  (** mean training loss per epoch *)
  faults : Faults.t;  (** quarantined / degraded / skipped example counts *)
}

let pp_report fmt r =
  Fmt.pf fmt "%-14s %-22s acc=%5.1f%%  t/epoch=%6.2fs" r.task r.provenance (100.0 *. r.accuracy)
    r.epoch_time;
  if Faults.total r.faults > 0 then Fmt.pf fmt "  [faults: %a]" Faults.pp r.faults

let provenance_name spec = Provenance.name (Registry.create spec)

(** One-hot target row for BCE training. *)
let one_hot n i = Nd.init [| 1; n |] (fun j -> if j = i then 1.0 else 0.0)

let bce = Autodiff.bce_loss ~eps:1e-6

(** Sum a non-empty list of scalar losses into one backward root. *)
let sum_losses = function
  | [] -> Autodiff.const (Nd.scalar 0.0)
  | l :: rest -> List.fold_left Autodiff.add l rest

(** Split [l] into consecutive arrays of at most [size] elements. *)
let chunks_of size l =
  if size <= 0 then invalid_arg "Common.chunks_of: size must be positive";
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else Array.of_list (List.rev cur) :: acc)
    | x :: rest ->
        if n = size then go (Array.of_list (List.rev cur) :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 l

(* ---- crash-safe checkpointing ------------------------------------------------------ *)

(** Checkpoint policy for a training run: snapshots go to [dir] every
    [every_n_steps] optimizer steps, keeping the last [keep] generations
    (so a corrupted newest snapshot still leaves valid fallbacks). *)
type checkpoint = { dir : string; every_n_steps : int; keep : int }

let checkpoint ?(every_n_steps = 25) ?(keep = 3) dir =
  if every_n_steps <= 0 then invalid_arg "Common.checkpoint: every_n_steps must be positive";
  { dir; every_n_steps; keep }

(* Payload layout (wrapped in Atomic_io's checksummed envelope):
   format tag, completed optimizer steps, per-epoch losses so far
   (accumulation order), partial-epoch loss sum, parameter values,
   optimizer state, extra RNG stream positions. *)
let payload_format = 1

let checkpoint_payload ~done_steps ~losses ~total ~(opt : Optim.t) ~rngs : string =
  let b = Buffer.create 4096 in
  Serialize.put_int b payload_format;
  Serialize.put_int b done_steps;
  Serialize.put_float_list b losses;
  Serialize.put_float b total;
  Serialize.put_params b opt.Optim.params;
  Serialize.put_optim b opt;
  Serialize.put_int b (List.length rngs);
  List.iter (Serialize.put_rng b) rngs;
  Buffer.contents b

(** Restore a payload produced by {!checkpoint_payload} into [opt] (params
    + optimizer state, in place) and [rngs]; returns
    [(done_steps, losses, total)].  Raises [Serialize.Corrupt] on any
    structural mismatch. *)
let restore_checkpoint ~payload ~(opt : Optim.t) ~rngs : int * float list * float =
  let r = Serialize.reader payload in
  let fmt = Serialize.get_int r in
  if fmt <> payload_format then Serialize.corrupt "unknown checkpoint format %d" fmt;
  let done_steps = Serialize.get_int r in
  let losses = Serialize.get_float_list r in
  let total = Serialize.get_float r in
  Serialize.get_params_into r opt.Optim.params;
  Serialize.get_optim_into r opt;
  let n_rngs = Serialize.get_int r in
  if n_rngs <> List.length rngs then
    Serialize.corrupt "checkpoint holds %d RNG streams, caller supplied %d" n_rngs
      (List.length rngs);
  List.iter (Serialize.get_rng_into r) rngs;
  (done_steps, losses, total)

(* Resume-from-latest-valid: Atomic_io already skips snapshots whose
   checksum fails; a snapshot that decodes but does not fit the live model
   (e.g. the architecture changed) is treated the same way — try the next
   older generation, or start fresh. *)
let try_resume ~(ck : checkpoint) ~opt ~rngs : (int * float list * float) option =
  let rec walk gens =
    match gens with
    | [] -> None
    | gen :: older -> (
        match Scallop_utils.Atomic_io.read_file ~path:(Scallop_utils.Atomic_io.path_of ~dir:ck.dir gen) with
        | Error _ -> walk older
        | Ok payload -> (
            match restore_checkpoint ~payload ~opt ~rngs with
            | state -> Some state
            | exception Serialize.Corrupt _ -> walk older))
  in
  walk (List.rev (Scallop_utils.Atomic_io.generations ~dir:ck.dir))

(* ---- guarded optimizer step -------------------------------------------------------- *)

(* Run one backward + step with the numeric guardrails: returns the loss
   value on success, or [None] after quarantining a non-finite loss or
   gradient (the optimizer is left untouched and gradients are cleared). *)
let guarded_step ~(config : config) ~(opt : Optim.t) ~(faults : Faults.t) loss : float option
    =
  let v = Nd.get1 (Autodiff.value loss) 0 in
  if not (Float.is_finite v) then begin
    faults.Faults.nan_quarantined <- faults.Faults.nan_quarantined + 1;
    opt.Optim.zero_grad ();
    None
  end
  else begin
    opt.Optim.zero_grad ();
    match Autodiff.backward_guarded loss with
    | () ->
        (match config.clip_grad with
        | Some max_norm -> ignore (Optim.clip_grad_norm ~max_norm opt)
        | None -> ());
        opt.Optim.step ();
        Some v
    | exception Autodiff.Non_finite _ ->
        faults.Faults.nan_quarantined <- faults.Faults.nan_quarantined + 1;
        opt.Optim.zero_grad ();
        None
  end

(* ---- training skeletons ------------------------------------------------------------ *)

(* Shared driver for both skeletons: [units] is the array of training units
   (samples or minibatches), [loss_of_unit u] runs the forward pass(es) and
   returns the summed loss plus the number of underlying examples.  One
   optimizer step per unit; checkpoints count units. *)
let train_loop ~(config : config) ?checkpoint ~(rngs : Scallop_utils.Rng.t list)
    ~(faults : Faults.t) ~(opt : Optim.t) ~(n_examples : int)
    ~(units : 'u array) ~(loss_of_unit : 'u -> Autodiff.t) () : float list * float list =
  let n_units = Array.length units in
  let losses = ref [] (* reversed: head = most recent epoch *) in
  let times = ref [] in
  let total = ref 0.0 in
  let done_steps = ref 0 in
  (match checkpoint with
  | None -> ()
  | Some ck -> (
      match try_resume ~ck ~opt ~rngs with
      | Some (steps, ls, tot) ->
          done_steps := steps;
          losses := ls;
          total := tot
      | None -> ()));
  let maybe_save () =
    match checkpoint with
    | Some ck when !done_steps mod ck.every_n_steps = 0 ->
        ignore
          (Scallop_utils.Atomic_io.save ~dir:ck.dir ~keep:ck.keep
             (checkpoint_payload ~done_steps:!done_steps ~losses:!losses ~total:!total ~opt
                ~rngs))
    | _ -> ()
  in
  for epoch = 1 to config.epochs do
    let epoch_start = (epoch - 1) * n_units in
    if epoch * n_units > !done_steps && n_units > 0 then begin
      let t0 = Scallop_utils.Monotonic.now () in
      if epoch_start >= !done_steps then total := 0.0;
      for i = 0 to n_units - 1 do
        let gstep = epoch_start + i in
        if gstep >= !done_steps then begin
          let loss = loss_of_unit units.(i) in
          (match guarded_step ~config ~opt ~faults loss with
          | Some v -> total := !total +. v
          | None -> ());
          done_steps := gstep + 1;
          if i = n_units - 1 then begin
            (* epoch complete: fold the accumulator into the loss curve
               before any snapshot, so a checkpoint taken at an epoch
               boundary restores a consistent (losses, total) pair *)
            losses := (!total /. float_of_int (max 1 n_examples)) :: !losses;
            total := 0.0
          end;
          maybe_save ()
        end
      done;
      times := Scallop_utils.Monotonic.elapsed_since t0 :: !times
    end
  done;
  (List.rev !losses, !times)

(** Train/eval skeleton: [train_step] returns the sample loss; [eval_sample]
    returns whether the prediction was correct.  Returns the report.

    With [?checkpoint], training state is snapshotted every
    [checkpoint.every_n_steps] optimizer steps and the run resumes from the
    newest valid snapshot; [?rngs] lists any generator streams the
    [train_step] closure draws from, so they are saved and restored too.
    Non-finite losses/gradients are quarantined (skipped + counted in the
    report's [faults]) rather than applied. *)
let run_task ?checkpoint ?(rngs : Scallop_utils.Rng.t list = []) ?(faults = Faults.create ())
    ~task ~(config : config) ~(train_data : 'a list) ~(test_data : 'a list) ~(opt : Optim.t)
    ~(train_step : 'a -> Autodiff.t) ~(eval_sample : 'a -> bool) () : report =
  let losses, times =
    train_loop ~config ?checkpoint ~rngs ~faults ~opt
      ~n_examples:(List.length train_data)
      ~units:(Array.of_list train_data) ~loss_of_unit:train_step ()
  in
  let correct = List.length (List.filter eval_sample test_data) in
  {
    task;
    provenance = provenance_name config.provenance;
    accuracy = float_of_int correct /. float_of_int (max 1 (List.length test_data));
    epoch_time = Scallop_utils.Listx.average times;
    losses;
    faults;
  }

(** Minibatched train/eval skeleton for the parallel runtime: [train_batch]
    returns one scalar loss per sample of the minibatch (typically computed
    with {!Scallop_nn.Scallop_layer.forward_batch} over a worker pool); the
    losses are summed into a single backward pass and one optimizer step per
    minibatch.  With [batch_size = 1] the optimization trajectory coincides
    with {!run_task}'s sample-at-a-time loop.  [eval_batch] returns
    per-sample correctness.  Checkpointing and the numeric guardrails work
    as in {!run_task}, at minibatch granularity. *)
let run_task_batched ?checkpoint ?(rngs : Scallop_utils.Rng.t list = [])
    ?(faults = Faults.create ()) ~task ~(config : config) ~(batch_size : int)
    ~(train_data : 'a list) ~(test_data : 'a list) ~(opt : Optim.t)
    ~(train_batch : 'a array -> Autodiff.t array)
    ~(eval_batch : 'a array -> bool array) () : report =
  let train_chunks = Array.of_list (chunks_of batch_size train_data) in
  let losses, times =
    train_loop ~config ?checkpoint ~rngs ~faults ~opt
      ~n_examples:(List.length train_data)
      ~units:train_chunks
      ~loss_of_unit:(fun chunk -> sum_losses (Array.to_list (train_batch chunk)))
      ()
  in
  let correct = ref 0 in
  List.iter
    (fun chunk -> Array.iter (fun ok -> if ok then incr correct) (eval_batch chunk))
    (chunks_of batch_size test_data);
  {
    task;
    provenance = provenance_name config.provenance;
    accuracy = float_of_int !correct /. float_of_int (max 1 (List.length test_data));
    epoch_time = Scallop_utils.Listx.average times;
    losses;
    faults;
  }
