(** Shared configuration, reporting and training utilities for the eight
    benchmark applications (paper Sec. 6.1). *)

open Scallop_tensor
open Scallop_core

type config = {
  seed : int;
  provenance : Registry.spec;
  epochs : int;
  n_train : int;
  n_test : int;
  lr : float;
}

let default_config =
  {
    seed = 1234;
    provenance = Registry.Diff_top_k_proofs_me 3;
    epochs = 3;
    n_train = 256;
    n_test = 100;
    lr = 0.01;
  }

type report = {
  task : string;
  provenance : string;
  accuracy : float;  (** test accuracy in [0,1] *)
  epoch_time : float;  (** mean wall-clock seconds per training epoch *)
  losses : float list;  (** mean training loss per epoch *)
}

let pp_report fmt r =
  Fmt.pf fmt "%-14s %-22s acc=%5.1f%%  t/epoch=%6.2fs" r.task r.provenance (100.0 *. r.accuracy)
    r.epoch_time

let provenance_name spec = Provenance.name (Registry.create spec)

(** One-hot target row for BCE training. *)
let one_hot n i = Nd.init [| 1; n |] (fun j -> if j = i then 1.0 else 0.0)

let bce = Autodiff.bce_loss ~eps:1e-6

(** Sum a non-empty list of scalar losses into one backward root. *)
let sum_losses = function
  | [] -> Autodiff.const (Nd.scalar 0.0)
  | l :: rest -> List.fold_left Autodiff.add l rest

(** Split [l] into consecutive arrays of at most [size] elements. *)
let chunks_of size l =
  if size <= 0 then invalid_arg "Common.chunks_of: size must be positive";
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else Array.of_list (List.rev cur) :: acc)
    | x :: rest ->
        if n = size then go (Array.of_list (List.rev cur) :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 l

(** Train/eval skeleton: [train_step] returns the sample loss; [eval_sample]
    returns whether the prediction was correct.  Returns the report. *)
let run_task ~task ~(config : config) ~(train_data : 'a list) ~(test_data : 'a list)
    ~(opt : Optim.t) ~(train_step : 'a -> Autodiff.t) ~(eval_sample : 'a -> bool) : report =
  let losses = ref [] in
  let times = ref [] in
  for _epoch = 1 to config.epochs do
    let t0 = Unix.gettimeofday () in
    let total = ref 0.0 in
    List.iter
      (fun sample ->
        let loss = train_step sample in
        opt.Optim.zero_grad ();
        Autodiff.backward loss;
        opt.Optim.step ();
        total := !total +. Nd.get1 (Autodiff.value loss) 0)
      train_data;
    times := (Unix.gettimeofday () -. t0) :: !times;
    losses := (!total /. float_of_int (max 1 (List.length train_data))) :: !losses
  done;
  let correct = List.length (List.filter eval_sample test_data) in
  {
    task;
    provenance = provenance_name config.provenance;
    accuracy = float_of_int correct /. float_of_int (max 1 (List.length test_data));
    epoch_time = Scallop_utils.Listx.average !times;
    losses = List.rev !losses;
  }

(** Minibatched train/eval skeleton for the parallel runtime: [train_batch]
    returns one scalar loss per sample of the minibatch (typically computed
    with {!Scallop_nn.Scallop_layer.forward_batch} over a worker pool); the
    losses are summed into a single backward pass and one optimizer step per
    minibatch.  [eval_batch] returns per-sample correctness.  With
    [batch_size = 1] the optimization trajectory coincides with
    {!run_task}'s sample-at-a-time loop. *)
let run_task_batched ~task ~(config : config) ~(batch_size : int)
    ~(train_data : 'a list) ~(test_data : 'a list) ~(opt : Optim.t)
    ~(train_batch : 'a array -> Autodiff.t array)
    ~(eval_batch : 'a array -> bool array) : report =
  let losses = ref [] in
  let times = ref [] in
  let train_chunks = chunks_of batch_size train_data in
  for _epoch = 1 to config.epochs do
    let t0 = Unix.gettimeofday () in
    let total = ref 0.0 in
    List.iter
      (fun chunk ->
        let sample_losses = Array.to_list (train_batch chunk) in
        let loss = sum_losses sample_losses in
        opt.Optim.zero_grad ();
        Autodiff.backward loss;
        opt.Optim.step ();
        total := !total +. Nd.get1 (Autodiff.value loss) 0)
      train_chunks;
    times := (Unix.gettimeofday () -. t0) :: !times;
    losses := (!total /. float_of_int (max 1 (List.length train_data))) :: !losses
  done;
  let correct = ref 0 in
  List.iter
    (fun chunk -> Array.iter (fun ok -> if ok then incr correct) (eval_batch chunk))
    (chunks_of batch_size test_data);
  {
    task;
    provenance = provenance_name config.provenance;
    accuracy = float_of_int !correct /. float_of_int (max 1 (List.length test_data));
    epoch_time = Scallop_utils.Listx.average !times;
    losses = List.rev !losses;
  }
