(** HWF: hand-written formula parsing and evaluation (paper Sec. 6.1,
    Appendix C.2).

    A 14-way symbol classifier feeds a Scallop program that parses the
    probabilistic symbol sequence with a context-free grammar and evaluates
    the arithmetic (Fig. 26).  The output domain is the rationals, so the
    layer runs with an open candidate set; following the paper we keep only
    the [sample_k] most likely classes per symbol to prune the parse space. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
module Hwf = Scallop_data.Hwf

type model = { mlp : Layers.Mlp.t; compiled : Session.compiled }

let create_model ~rng ~dim =
  { mlp = Layers.Mlp.create rng [ dim; 64; Hwf.num_symbols ]; compiled = Session.compile Programs.hwf }

let symbol_tuples_at idx =
  Array.map (fun s -> Tuple.of_list [ Value.int Value.USize idx; Value.string s ]) Hwf.symbols

(** Forward one formula: returns the derived (value, probability) pairs as
    an open-domain output. *)
let forward ?(spec = Registry.Diff_top_k_proofs_me 3) ?(sample_k = 7) (m : model)
    (s : Hwf.sample) : Scallop_layer.run_output =
  let inputs =
    List.mapi
      (fun i img ->
        let probs = Layers.Mlp.classify m.mlp (Autodiff.const img) in
        Scallop_layer.topk_mapping ~k:sample_k ~pred:"symbol" ~tuples:(symbol_tuples_at i)
          ~probs ~mutually_exclusive:true)
      s.Hwf.images
  in
  let static_facts =
    [ ("length", Tuple.of_list [ Value.int Value.USize (List.length s.Hwf.images) ]) ]
  in
  Scallop_layer.forward_open ~spec ~compiled:m.compiled ~static_facts ~inputs ~out_pred:"result" ()

let layer_samples_of ~sample_k (m : model) (samples : Hwf.sample array) :
    Scallop_layer.sample array =
  Array.map
    (fun (s : Hwf.sample) ->
      let inputs =
        List.mapi
          (fun i img ->
            let probs = Layers.Mlp.classify m.mlp (Autodiff.const img) in
            Scallop_layer.topk_mapping ~k:sample_k ~pred:"symbol"
              ~tuples:(symbol_tuples_at i) ~probs ~mutually_exclusive:true)
          s.Hwf.images
      in
      let static_facts =
        [ ("length", Tuple.of_list [ Value.int Value.USize (List.length s.Hwf.images) ]) ]
      in
      { Scallop_layer.inputs; static_facts })
    samples

(** Batched forward over a pool: one compiled grammar, many formulas. *)
let forward_batch ?(spec = Registry.Diff_top_k_proofs_me 3) ?(sample_k = 7) ?pool ?jobs
    (m : model) (samples : Hwf.sample array) : Scallop_layer.run_output array =
  Scallop_layer.forward_open_batch ?pool ?jobs ~spec ~compiled:m.compiled ~out_pred:"result"
    (layer_samples_of ~sample_k m samples)

(** Resilient batched forward: per-sample outcomes, with NaN quarantine and
    budget degradation handled by {!Scallop_layer.resilient_forward_open_batch}. *)
let resilient_forward_batch ?(spec = Registry.Diff_top_k_proofs_me 3) ?(sample_k = 7) ?pool
    ?jobs ?config ?faults (m : model) (samples : Hwf.sample array) :
    (Scallop_layer.run_output, Exec_error.t) result array =
  Scallop_layer.resilient_forward_open_batch ?pool ?jobs ?config ?faults ~spec
    ~compiled:m.compiled ~out_pred:"result"
    (layer_samples_of ~sample_k m samples)

(** Decode a result tuple's numeric value.  [None] for a malformed
    (non-float) tuple: callers must treat that as a {e counted} per-example
    failure — mapping it to [nan] (the historical behavior) let the bad
    value propagate silently into losses and accuracy. *)
let value_of_tuple (t : Tuple.t) : float option = Value.to_float (Tuple.get t 0)

let close a b = Float.abs (a -. b) < 1e-3

(* Decode every candidate value of an output, or quarantine the example:
   one malformed tuple poisons the whole target row, so it is counted once
   (in [faults.malformed]) and the example is skipped. *)
let decode_values ?faults (out : Scallop_layer.run_output) : float array option =
  let vals = Array.map value_of_tuple out.Scallop_layer.tuples in
  if Array.length vals > 0 && Array.for_all Option.is_some vals then
    Some (Array.map Option.get vals)
  else begin
    if Array.exists Option.is_none vals then
      Option.iter
        (fun (f : Scallop_utils.Faults.t) ->
          f.Scallop_utils.Faults.malformed <- f.Scallop_utils.Faults.malformed + 1)
        faults;
    None
  end

let predict ?spec ?sample_k m s =
  let out = forward ?spec ?sample_k m s in
  let y = Autodiff.value out.Scallop_layer.y in
  match decode_values out with
  | None -> None
  | Some vals ->
      let best = ref 0 in
      Array.iteri (fun j _ -> if Nd.get1 y j > Nd.get1 y !best then best := j) vals;
      Some vals.(!best)

(* Loss of one decoded example: BCE of the output distribution against the
   candidates that evaluate close to the ground truth. *)
let loss_of_decoded (out : Scallop_layer.run_output) (vals : float array) (s : Hwf.sample) =
  let n = Array.length vals in
  let target = Nd.init [| 1; n |] (fun j -> if close vals.(j) s.Hwf.value then 1.0 else 0.0) in
  Common.bce out.Scallop_layer.y (Autodiff.const target)

let train_and_eval ?(dim = 16) ?(noise = 0.35) ?(max_len = 7) ?checkpoint
    (config : Common.config) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Hwf.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train_data = Hwf.dataset ~max_len data config.Common.n_train in
  let test_data = Hwf.dataset ~max_len data config.Common.n_test in
  let spec = config.Common.provenance in
  let faults = Scallop_utils.Faults.create () in
  Common.run_task ?checkpoint ~faults ~task:"HWF" ~config ~train_data ~test_data ~opt
    ~train_step:(fun (s : Hwf.sample) ->
      let out = forward ~spec m s in
      match decode_values ~faults out with
      | None -> Autodiff.const (Nd.scalar 0.0)
      | Some vals -> loss_of_decoded out vals s)
    ~eval_sample:(fun s ->
      match predict ~spec m s with Some v -> close v s.Hwf.value | None -> false)
    ()

(** Minibatched counterpart of {!train_and_eval} on the parallel runtime.
    Per-sample failures (budget, NaN quarantine, malformed tuples) go through
    the resilient layer path: the sample contributes zero loss (training) or
    counts incorrect (eval) and is tallied in the report's fault record. *)
let train_and_eval_batched ?(dim = 16) ?(noise = 0.35) ?(max_len = 7) ?(batch_size = 16)
    ?(jobs = 1) ?checkpoint (config : Common.config) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Hwf.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train_data = Hwf.dataset ~max_len data config.Common.n_train in
  let test_data = Hwf.dataset ~max_len data config.Common.n_test in
  let spec = config.Common.provenance in
  let faults = Scallop_utils.Faults.create () in
  let zero = Autodiff.const (Nd.scalar 0.0) in
  let loss_of outcome (s : Hwf.sample) =
    match outcome with
    | Error _ -> zero
    | Ok (out : Scallop_layer.run_output) -> (
        if Array.length out.Scallop_layer.tuples = 0 then zero
        else
          match decode_values ~faults out with
          | None -> zero
          | Some vals -> loss_of_decoded out vals s)
  in
  let correct_of outcome (s : Hwf.sample) =
    match outcome with
    | Error _ -> false
    | Ok (out : Scallop_layer.run_output) -> (
        match decode_values out with
        | None -> false
        | Some vals ->
            let y = Autodiff.value out.Scallop_layer.y in
            let best = ref 0 in
            Array.iteri (fun j _ -> if Nd.get1 y j > Nd.get1 y !best then best := j) vals;
            close vals.(!best) s.Hwf.value)
  in
  Scallop_utils.Pool.with_pool (max 1 jobs) (fun pool ->
      Common.run_task_batched ?checkpoint ~faults ~task:"HWF" ~config ~batch_size ~train_data
        ~test_data ~opt
        ~train_batch:(fun samples ->
          Array.map2 loss_of (resilient_forward_batch ~spec ~pool ~faults m samples) samples)
        ~eval_batch:(fun samples ->
          Array.map2 correct_of (resilient_forward_batch ~spec ~pool m samples) samples)
        ())
