(** HWF: hand-written formula parsing and evaluation (paper Sec. 6.1,
    Appendix C.2).

    A 14-way symbol classifier feeds a Scallop program that parses the
    probabilistic symbol sequence with a context-free grammar and evaluates
    the arithmetic (Fig. 26).  The output domain is the rationals, so the
    layer runs with an open candidate set; following the paper we keep only
    the [sample_k] most likely classes per symbol to prune the parse space. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
module Hwf = Scallop_data.Hwf

type model = { mlp : Layers.Mlp.t; compiled : Session.compiled }

let create_model ~rng ~dim =
  { mlp = Layers.Mlp.create rng [ dim; 64; Hwf.num_symbols ]; compiled = Session.compile Programs.hwf }

let symbol_tuples_at idx =
  Array.map (fun s -> Tuple.of_list [ Value.int Value.USize idx; Value.string s ]) Hwf.symbols

(** Forward one formula: returns the derived (value, probability) pairs as
    an open-domain output. *)
let forward ?(spec = Registry.Diff_top_k_proofs_me 3) ?(sample_k = 7) (m : model)
    (s : Hwf.sample) : Scallop_layer.run_output =
  let inputs =
    List.mapi
      (fun i img ->
        let probs = Layers.Mlp.classify m.mlp (Autodiff.const img) in
        Scallop_layer.topk_mapping ~k:sample_k ~pred:"symbol" ~tuples:(symbol_tuples_at i)
          ~probs ~mutually_exclusive:true)
      s.Hwf.images
  in
  let static_facts =
    [ ("length", Tuple.of_list [ Value.int Value.USize (List.length s.Hwf.images) ]) ]
  in
  Scallop_layer.forward_open ~spec ~compiled:m.compiled ~static_facts ~inputs ~out_pred:"result" ()

(** Batched forward over a pool: one compiled grammar, many formulas. *)
let forward_batch ?(spec = Registry.Diff_top_k_proofs_me 3) ?(sample_k = 7) ?pool ?jobs
    (m : model) (samples : Hwf.sample array) : Scallop_layer.run_output array =
  let layer_samples =
    Array.map
      (fun (s : Hwf.sample) ->
        let inputs =
          List.mapi
            (fun i img ->
              let probs = Layers.Mlp.classify m.mlp (Autodiff.const img) in
              Scallop_layer.topk_mapping ~k:sample_k ~pred:"symbol"
                ~tuples:(symbol_tuples_at i) ~probs ~mutually_exclusive:true)
            s.Hwf.images
        in
        let static_facts =
          [ ("length", Tuple.of_list [ Value.int Value.USize (List.length s.Hwf.images) ]) ]
        in
        { Scallop_layer.inputs; static_facts })
      samples
  in
  Scallop_layer.forward_open_batch ?pool ?jobs ~spec ~compiled:m.compiled ~out_pred:"result"
    layer_samples

let value_of_tuple (t : Tuple.t) =
  match Value.to_float (Tuple.get t 0) with Some f -> f | None -> nan

let close a b = Float.abs (a -. b) < 1e-3

let predict ?spec ?sample_k m s =
  let out = forward ?spec ?sample_k m s in
  let y = Autodiff.value out.Scallop_layer.y in
  if Array.length out.Scallop_layer.tuples = 0 then None
  else begin
    let best = ref 0 in
    Array.iteri (fun j _ -> if Nd.get1 y j > Nd.get1 y !best then best := j) out.Scallop_layer.tuples;
    Some (value_of_tuple out.Scallop_layer.tuples.(!best))
  end

let train_and_eval ?(dim = 16) ?(noise = 0.35) ?(max_len = 7) (config : Common.config) :
    Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Hwf.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train_data = Hwf.dataset ~max_len data config.Common.n_train in
  let test_data = Hwf.dataset ~max_len data config.Common.n_test in
  let spec = config.Common.provenance in
  Common.run_task ~task:"HWF" ~config ~train_data ~test_data ~opt
    ~train_step:(fun (s : Hwf.sample) ->
      let out = forward ~spec m s in
      let n = Array.length out.Scallop_layer.tuples in
      if n = 0 then Autodiff.const (Nd.scalar 0.0)
      else begin
        let target =
          Nd.init [| 1; n |] (fun j ->
              if close (value_of_tuple out.Scallop_layer.tuples.(j)) s.Hwf.value then 1.0 else 0.0)
        in
        Common.bce out.Scallop_layer.y (Autodiff.const target)
      end)
    ~eval_sample:(fun s ->
      match predict ~spec m s with Some v -> close v s.Hwf.value | None -> false)

(** Minibatched counterpart of {!train_and_eval} on the parallel runtime. *)
let train_and_eval_batched ?(dim = 16) ?(noise = 0.35) ?(max_len = 7) ?(batch_size = 16)
    ?(jobs = 1) (config : Common.config) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Hwf.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train_data = Hwf.dataset ~max_len data config.Common.n_train in
  let test_data = Hwf.dataset ~max_len data config.Common.n_test in
  let spec = config.Common.provenance in
  let loss_of (out : Scallop_layer.run_output) (s : Hwf.sample) =
    let n = Array.length out.Scallop_layer.tuples in
    if n = 0 then Autodiff.const (Nd.scalar 0.0)
    else begin
      let target =
        Nd.init [| 1; n |] (fun j ->
            if close (value_of_tuple out.Scallop_layer.tuples.(j)) s.Hwf.value then 1.0
            else 0.0)
      in
      Common.bce out.Scallop_layer.y (Autodiff.const target)
    end
  in
  let correct_of (out : Scallop_layer.run_output) (s : Hwf.sample) =
    let y = Autodiff.value out.Scallop_layer.y in
    if Array.length out.Scallop_layer.tuples = 0 then false
    else begin
      let best = ref 0 in
      Array.iteri
        (fun j _ -> if Nd.get1 y j > Nd.get1 y !best then best := j)
        out.Scallop_layer.tuples;
      close (value_of_tuple out.Scallop_layer.tuples.(!best)) s.Hwf.value
    end
  in
  Scallop_utils.Pool.with_pool (max 1 jobs) (fun pool ->
      Common.run_task_batched ~task:"HWF" ~config ~batch_size ~train_data ~test_data ~opt
        ~train_batch:(fun samples ->
          Array.map2 loss_of (forward_batch ~spec ~pool m samples) samples)
        ~eval_batch:(fun samples ->
          Array.map2 correct_of (forward_batch ~spec ~pool m samples) samples))
