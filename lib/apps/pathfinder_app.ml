(** Pathfinder: image classification with long-range dependency
    (paper Sec. 6.1, Appendix C.3).

    Edge percepts are classified by an MLP into dash-present probabilities;
    the Scallop program (Fig. 28) computes the transitive closure over
    present dashes and checks connectivity of the two marked dots, with
    supervision only on the connected/not-connected bit. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
module Pf = Scallop_data.Pathfinder

type model = { mlp : Layers.Mlp.t; compiled : Session.compiled; data : Pf.t }

let create_model ~rng ~dim data =
  { mlp = Layers.Mlp.create rng [ dim; 32; 2 ]; compiled = Session.compile Programs.pathfinder; data }

(** Per-edge dash probability: column 1 of a 2-way softmax. *)
let edge_probs (m : model) (s : Pf.sample) : Autodiff.t =
  let feats = Nd.stack_rows s.Pf.edge_images in
  let logits = Layers.Mlp.classify m.mlp (Autodiff.const feats) in
  (* select the "present" column: probs shape (E,2) -> (E) via a projection *)
  let e = List.length s.Pf.edge_images in
  let sel = Nd.zeros [| 2; 1 |] in
  Nd.set2 sel 1 0 1.0;
  Autodiff.matmul logits (Autodiff.const sel) |> fun v ->
  (* reshape (E,1) -> (1,E) is free: same data *)
  Autodiff.custom ~op:"reshape"
    ~value:(Nd.reshape (Autodiff.value v) [| 1; e |])
    ~parents:[ { Autodiff.var = v; push = (fun g -> Nd.reshape g [| e; 1 |]) } ]

let forward ?(spec = Registry.Diff_top_k_proofs 3) (m : model) (s : Pf.sample) : Autodiff.t =
  let probs = edge_probs m s in
  let tuples =
    Array.map
      (fun (a, b) -> Tuple.of_list [ Value.int Value.U32 a; Value.int Value.U32 b ])
      m.data.Pf.edges
  in
  let a, b = s.Pf.dots in
  let static_facts =
    [
      ("dot", Tuple.of_list [ Value.int Value.U32 a ]);
      ("dot", Tuple.of_list [ Value.int Value.U32 b ]);
    ]
  in
  Scallop_layer.forward ~spec ~compiled:m.compiled ~static_facts
    ~inputs:[ Scallop_layer.dense_mapping ~pred:"dash" ~tuples ~probs ~mutually_exclusive:false ]
    ~out_pred:"connected" ~candidates:[| Tuple.unit |] ()

let predict ?spec m s = Nd.get1 (Autodiff.value (forward ?spec m s)) 0 > 0.5

let train_and_eval ?(grid = 4) ?(dim = 12) ?(noise = 0.4) (config : Common.config) :
    Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Pf.create ~grid ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim data in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train_data = Pf.dataset data config.Common.n_train in
  let test_data = Pf.dataset data config.Common.n_test in
  let spec = config.Common.provenance in
  Common.run_task ~task:"Pathfinder" ~config ~train_data ~test_data ~opt
    ~train_step:(fun (s : Pf.sample) ->
      let y = forward ~spec m s in
      let target = Nd.scalar (if s.Pf.connected then 1.0 else 0.0) in
      Common.bce y (Autodiff.const target))
    ~eval_sample:(fun s -> predict ~spec m s = s.Pf.connected)
    ()
