(** VQAR: visual question answering with common-sense reasoning
    (paper Sec. 6.1).

    The object-name classifier is trained end-to-end: programmatic queries
    are evaluated against the probabilistic scene graph with the aid of the
    is-a knowledge base, and supervision is the retrieved object set. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
module Vq = Scallop_data.Vqar

type model = { name_mlp : Layers.Mlp.t; compiled : Session.compiled }

let create_model ~rng ~dim =
  {
    name_mlp = Layers.Mlp.create rng [ dim; 48; Array.length Vq.leaf_names ];
    compiled = Session.compile Programs.vqar;
  }

let name_tuples oid =
  Array.map (fun n -> Tuple.of_list [ Value.int Value.USize oid; Value.string n ]) Vq.leaf_names

let kb_facts =
  lazy
    (List.map
       (fun (a, b) -> ("is_a", Tuple.of_list [ Value.string a; Value.string b ]))
       Vq.taxonomy)

let query_facts (q : Vq.query) =
  match q with
  | Vq.Q_is_a c -> [ ("q_is_a", Tuple.of_list [ Value.string c ]) ]
  | Vq.Q_attr (c, a) -> [ ("q_attr", Tuple.of_list [ Value.string c; Value.string a ]) ]
  | Vq.Q_rel (c1, r, c2) ->
      [ ("q_rel", Tuple.of_list [ Value.string c1; Value.string r; Value.string c2 ]) ]

let forward ?(spec = Registry.Diff_top_k_proofs 3) (m : model) (s : Vq.sample) : Autodiff.t =
  let inputs =
    List.mapi
      (fun oid img ->
        let probs = Layers.Mlp.classify m.name_mlp (Autodiff.const img) in
        Scallop_layer.dense_mapping ~pred:"obj_name" ~tuples:(name_tuples oid) ~probs
          ~mutually_exclusive:true)
      s.Vq.name_images
  in
  let static_facts =
    Lazy.force kb_facts @ query_facts s.Vq.query
    @ List.concat_map
        (fun (o : Vq.obj) ->
          List.map
            (fun a -> ("obj_attr", Tuple.of_list [ Value.int Value.USize o.Vq.oid; Value.string a ]))
            o.Vq.attrs)
        s.Vq.scene.Vq.objects
    @ List.map
        (fun (r, a, b) ->
          ("obj_rela", Tuple.of_list [ Value.string r; Value.int Value.USize a; Value.int Value.USize b ]))
        s.Vq.scene.Vq.rels
  in
  let n = List.length s.Vq.scene.Vq.objects in
  let candidates = Array.init n (fun o -> Tuple.of_list [ Value.int Value.USize o ]) in
  Scallop_layer.forward ~spec ~compiled:m.compiled ~static_facts ~inputs ~out_pred:"answer"
    ~candidates ()

(** Predicted object set: probability above 0.5. *)
let predict ?spec m s =
  let y = Autodiff.value (forward ?spec m s) in
  List.filteri (fun o _ -> Nd.get1 y o > 0.5) (List.init (Nd.numel y) Fun.id)

(** Exact-set-match accuracy (the paper reports recall-style metrics;
    exact match is stricter). *)
let train_and_eval ?(dim = 16) ?(noise = 0.35) (config : Common.config) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Vq.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.name_mlp) in
  let train_data = Vq.dataset data config.Common.n_train in
  let test_data = Vq.dataset data config.Common.n_test in
  let spec = config.Common.provenance in
  Common.run_task ~task:"VQAR" ~config ~train_data ~test_data ~opt
    ~train_step:(fun (s : Vq.sample) ->
      let y = forward ~spec m s in
      let n = List.length s.Vq.scene.Vq.objects in
      let target = Nd.init [| 1; n |] (fun o -> if List.mem o s.Vq.answer then 1.0 else 0.0) in
      Common.bce y (Autodiff.const target))
    ~eval_sample:(fun s -> List.sort compare (predict ~spec m s) = List.sort compare s.Vq.answer)
    ()
