(** MNIST-R: the synthetic MNIST test suite (paper Sec. 6.1, Appendix C.1).

    Seven subtasks over handwritten digits — arithmetic (sum2/3/4),
    comparison (less-than), negation (not-3-or-4) and counting (count-3,
    count-3-or-4) — each trained with supervision on the task output only.
    A single 10-way MLP classifier plays the CNN's role; its distribution
    feeds the task's Scallop program through the differentiable layer. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core

let program_of (task : Scallop_data.Mnist.task) =
  match task with
  | Sum2 -> Programs.mnist_sum2
  | Sum3 -> Programs.mnist_sum3
  | Sum4 -> Programs.mnist_sum4
  | Less_than -> Programs.mnist_less_than
  | Not_3_or_4 -> Programs.mnist_not_3_or_4
  | Count_3 -> Programs.mnist_count_3
  | Count_3_or_4 -> Programs.mnist_count_3_or_4

let digit_tuples = Array.init 10 (fun v -> Tuple.of_list [ Value.int Value.U32 v ])

let digit_tuples_with_id id =
  Array.init 10 (fun v -> Tuple.of_list [ Value.int Value.U32 id; Value.int Value.U32 v ])

(** Interface between perception outputs and the program: the list of input
    mappings, the output predicate, and the candidate tuples per task. *)
let interface (task : Scallop_data.Mnist.task) (probs : Autodiff.t list) :
    Scallop_layer.input_mapping list * string * Tuple.t array =
  let dense pred p =
    Scallop_layer.dense_mapping ~pred ~tuples:digit_tuples ~probs:p ~mutually_exclusive:true
  in
  let int_candidates n ty = Array.init n (fun i -> Tuple.of_list [ Value.int ty i ]) in
  let bool_candidates =
    [| Tuple.of_list [ Value.bool false ]; Tuple.of_list [ Value.bool true ] |]
  in
  match (task, probs) with
  | Sum2, [ a; b ] -> ([ dense "digit_1" a; dense "digit_2" b ], "sum_2", int_candidates 19 Value.U32)
  | Sum3, [ a; b; c ] ->
      ([ dense "digit_1" a; dense "digit_2" b; dense "digit_3" c ], "sum_3", int_candidates 28 Value.U32)
  | Sum4, [ a; b; c; d ] ->
      ( [ dense "digit_1" a; dense "digit_2" b; dense "digit_3" c; dense "digit_4" d ],
        "sum_4",
        int_candidates 37 Value.U32 )
  | Less_than, [ a; b ] -> ([ dense "digit_1" a; dense "digit_2" b ], "less_than", bool_candidates)
  | Not_3_or_4, [ a ] ->
      ( [ Scallop_layer.dense_mapping ~pred:"digit" ~tuples:digit_tuples ~probs:a ~mutually_exclusive:true ],
        "not_3_or_4",
        [| Tuple.unit |] )
  | (Count_3 | Count_3_or_4), ps ->
      ( List.mapi
          (fun id p ->
            Scallop_layer.dense_mapping ~pred:"digit" ~tuples:(digit_tuples_with_id id) ~probs:p
              ~mutually_exclusive:true)
          ps,
        (if task = Count_3 then "count_3" else "count_3_or_4"),
        int_candidates 9 Value.USize )
  | _ -> invalid_arg "Mnist_r.interface: wrong number of perception outputs"

(** Target candidate index for a sample (tasks encode outputs as ints). *)
let target_index (task : Scallop_data.Mnist.task) (s : Scallop_data.Mnist.sample) = ignore task; s.Scallop_data.Mnist.target

type model = { mlp : Layers.Mlp.t; compiled : Session.compiled; task : Scallop_data.Mnist.task }

let create_model ~rng ~dim task =
  {
    mlp = Layers.Mlp.create rng [ dim; 64; 10 ];
    compiled = Session.compile (program_of task);
    task;
  }

let forward ?(spec = Registry.Diff_top_k_proofs_me 3) (m : model)
    (s : Scallop_data.Mnist.sample) : Autodiff.t =
  let probs =
    List.map (fun img -> Layers.Mlp.classify m.mlp (Autodiff.const img)) s.Scallop_data.Mnist.images
  in
  let inputs, out_pred, candidates = interface m.task probs in
  Scallop_layer.forward ~spec ~compiled:m.compiled ~inputs ~out_pred ~candidates ()

(** Batched forward: classify all images (main domain), then run the logic
    program for the whole minibatch across the pool. *)
let forward_batch ?(spec = Registry.Diff_top_k_proofs_me 3) ?pool ?jobs (m : model)
    (samples : Scallop_data.Mnist.sample array) : Autodiff.t array =
  let out_pred = ref "" and candidates = ref [||] in
  let layer_samples =
    Array.map
      (fun (s : Scallop_data.Mnist.sample) ->
        let probs =
          List.map
            (fun img -> Layers.Mlp.classify m.mlp (Autodiff.const img))
            s.Scallop_data.Mnist.images
        in
        let inputs, op, cands = interface m.task probs in
        out_pred := op;
        candidates := cands;
        { Scallop_layer.inputs; static_facts = [] })
      samples
  in
  Scallop_layer.forward_batch ?pool ?jobs ~spec ~compiled:m.compiled ~out_pred:!out_pred
    ~candidates:!candidates layer_samples

(** Resilient batched forward: per-sample outcome slots, with quarantine
    and budget degradation (see {!Scallop_layer.resilient_forward_batch}). *)
let resilient_forward_batch ?(spec = Registry.Diff_top_k_proofs_me 3) ?pool ?jobs ?config
    ?faults (m : model) (samples : Scallop_data.Mnist.sample array) :
    (Autodiff.t, Exec_error.t) result array =
  let out_pred = ref "" and candidates = ref [||] in
  let layer_samples =
    Array.map
      (fun (s : Scallop_data.Mnist.sample) ->
        let probs =
          List.map
            (fun img -> Layers.Mlp.classify m.mlp (Autodiff.const img))
            s.Scallop_data.Mnist.images
        in
        let inputs, op, cands = interface m.task probs in
        out_pred := op;
        candidates := cands;
        { Scallop_layer.inputs; static_facts = [] })
      samples
  in
  Scallop_layer.resilient_forward_batch ?pool ?jobs ?config ?faults ~spec ~compiled:m.compiled
    ~out_pred:!out_pred ~candidates:!candidates layer_samples

let predict ?spec (m : model) s =
  let y = forward ?spec m s in
  if m.task = Not_3_or_4 then if Nd.get1 (Autodiff.value y) 0 > 0.5 then 1 else 0
  else Nd.argmax_row (Autodiff.value y) 0

(** Accuracy of the perception component itself (for RQ5 failure analysis). *)
let digit_accuracy (m : model) (data : Scallop_data.Mnist.sample list) =
  let total = ref 0 and correct = ref 0 in
  List.iter
    (fun (s : Scallop_data.Mnist.sample) ->
      List.iter2
        (fun img d ->
          incr total;
          let p = Layers.Mlp.classify m.mlp (Autodiff.const img) in
          if Nd.argmax_row (Autodiff.value p) 0 = d then incr correct)
        s.Scallop_data.Mnist.images s.Scallop_data.Mnist.digits)
    data;
  float_of_int !correct /. float_of_int (max 1 !total)

let train_and_eval ?(dim = 16) ?(noise = 0.5) ?checkpoint (config : Common.config)
    (task : Scallop_data.Mnist.task) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Scallop_data.Mnist.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim task in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train_data = Scallop_data.Mnist.dataset data task config.Common.n_train in
  let test_data = Scallop_data.Mnist.dataset data task config.Common.n_test in
  let spec = config.Common.provenance in
  let n_candidates =
    let _, _, cands = interface task (List.map (fun _ -> Autodiff.const (Nd.zeros [| 1; 10 |])) (List.init (Scallop_data.Mnist.num_images task) Fun.id)) in
    Array.length cands
  in
  Common.run_task ?checkpoint ~task:(Scallop_data.Mnist.task_name task) ~config ~train_data
    ~test_data ~opt
    ~train_step:(fun s ->
      let y = forward ~spec m s in
      let target =
        if task = Not_3_or_4 then Nd.of_array [| 1; 1 |] [| float_of_int s.target |]
        else Common.one_hot n_candidates (target_index task s)
      in
      Common.bce y (Autodiff.const target))
    ~eval_sample:(fun s -> predict ~spec m s = target_index task s)
    ()

(** Minibatched counterpart of {!train_and_eval}: the logic-program
    executions of each minibatch fan out over [jobs] domains through one
    shared pool; gradients route back to the right samples positionally. *)
let train_and_eval_batched ?(dim = 16) ?(noise = 0.5) ?(batch_size = 16) ?(jobs = 1)
    ?checkpoint (config : Common.config) (task : Scallop_data.Mnist.task) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Scallop_data.Mnist.create ~noise ~dim ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim task in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let train_data = Scallop_data.Mnist.dataset data task config.Common.n_train in
  let test_data = Scallop_data.Mnist.dataset data task config.Common.n_test in
  let spec = config.Common.provenance in
  let n_candidates =
    let _, _, cands = interface task (List.map (fun _ -> Autodiff.const (Nd.zeros [| 1; 10 |])) (List.init (Scallop_data.Mnist.num_images task) Fun.id)) in
    Array.length cands
  in
  let target_row (s : Scallop_data.Mnist.sample) =
    if task = Not_3_or_4 then Nd.of_array [| 1; 1 |] [| float_of_int s.target |]
    else Common.one_hot n_candidates (target_index task s)
  in
  let faults = Scallop_utils.Faults.create () in
  let zero = Autodiff.const (Nd.scalar 0.0) in
  Scallop_utils.Pool.with_pool (max 1 jobs) (fun pool ->
      Common.run_task_batched ?checkpoint ~faults ~task:(Scallop_data.Mnist.task_name task)
        ~config ~batch_size ~train_data ~test_data ~opt
        ~train_batch:(fun samples ->
          let ys = resilient_forward_batch ~spec ~pool ~faults m samples in
          Array.map2
            (fun y s ->
              match y with
              | Error _ -> zero
              | Ok y -> Common.bce y (Autodiff.const (target_row s)))
            ys samples)
        ~eval_batch:(fun samples ->
          let ys = resilient_forward_batch ~spec ~pool m samples in
          Array.map2
            (fun y (s : Scallop_data.Mnist.sample) ->
              match y with
              | Error _ -> false
              | Ok y ->
                  let predicted =
                    if task = Not_3_or_4 then
                      if Nd.get1 (Autodiff.value y) 0 > 0.5 then 1 else 0
                    else Nd.argmax_row (Autodiff.value y) 0
                  in
                  predicted = target_index task s)
            ys samples)
        ())
