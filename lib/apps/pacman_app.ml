(** PacMan-Maze: neurosymbolic reinforcement learning (paper Sec. 2,
    Appendix C.4).

    The entity extractor classifies each cell percept into
    {empty, actor, goal, enemy}; the path-planning program (Fig. 29) derives
    the probability that each action starts an enemy-free path to the goal.
    The action distribution acts as the policy; training updates the
    extractor from the end-of-episode reward alone (success/failure of the
    whole action sequence — the paper's algorithmic supervision).  The
    program's [violation] output (integrity constraints, RQ5) is added to
    the loss to keep the extractor's scene estimates consistent. *)

open Scallop_tensor
open Scallop_nn
open Scallop_core
module Env = Scallop_envs.Pacman

type model = { mlp : Layers.Mlp.t; compiled : Session.compiled; grid : int }

let create_model ~rng ~dim ~grid =
  { mlp = Layers.Mlp.create rng [ dim; 32; 4 ]; compiled = Session.compile Programs.pacman; grid }

let cell_tuples grid kind =
  ignore kind;
  Array.init (grid * grid) (fun i ->
      let x = i mod grid and y = i / grid in
      Tuple.of_list [ Value.int Value.USize x; Value.int Value.USize y ])

(** Select column [c] of an (N,4) probability matrix as a (1,N) row. *)
let select_col (probs : Autodiff.t) c n =
  let sel = Nd.zeros [| 4; 1 |] in
  Nd.set2 sel c 0 1.0;
  let v = Autodiff.matmul probs (Autodiff.const sel) in
  Autodiff.custom ~op:"reshape"
    ~value:(Nd.reshape (Autodiff.value v) [| 1; n |])
    ~parents:[ { Autodiff.var = v; push = (fun g -> Nd.reshape g [| n; 1 |]) } ]

type decision = {
  action_probs : Autodiff.t;  (** (1,4) over up/down/right/left *)
  violation : Autodiff.t;  (** (1,1) integrity-violation probability *)
}

let forward ?(spec = Registry.Diff_top_k_proofs 1) (m : model) (obs : Nd.t) : decision =
  let n = m.grid * m.grid in
  let probs = Layers.Mlp.classify m.mlp (Autodiff.const obs) in
  (* class order matches Env.cell_class: 0 empty, 1 actor, 2 goal, 3 enemy *)
  let mapping pred c =
    Scallop_layer.dense_mapping ~pred ~tuples:(cell_tuples m.grid pred)
      ~probs:(select_col probs c n) ~mutually_exclusive:false
  in
  let inputs = [ mapping "actor" 1; mapping "goal" 2; mapping "enemy" 3 ] in
  (* grid_node tagged 0.99: the per-step penalty making longer paths less
     likely (paper footnote 2). *)
  let grid_probs =
    Autodiff.const (Nd.create [| 1; n |] 0.99)
  in
  let inputs =
    Scallop_layer.dense_mapping ~pred:"grid_node" ~tuples:(cell_tuples m.grid "grid_node")
      ~probs:grid_probs ~mutually_exclusive:false
    :: inputs
  in
  let action_candidates = Array.init 4 (fun a -> Tuple.of_list [ Value.int Value.USize a ]) in
  match
    Scallop_layer.forward_multi ~spec ~compiled:m.compiled ~inputs
      ~outputs:[ ("next_action", action_candidates); ("violation", [| Tuple.unit |]) ]
      ()
  with
  | [ action_probs; violation ] -> { action_probs; violation }
  | _ -> assert false

(** Play one episode; returns (success, per-step (decision, action index)). *)
let play_episode ?spec ?(epsilon = 0.0) ~rng (m : model) (env : Env.t) =
  Env.reset env;
  let steps = ref [] in
  let finished = ref false in
  let success = ref false in
  while not !finished do
    let obs = Env.observe env in
    let d = forward ?spec m obs in
    let a =
      if Scallop_utils.Rng.float rng < epsilon then Scallop_utils.Rng.int rng 4
      else Nd.argmax_row (Autodiff.value d.action_probs) 0
    in
    steps := (d, a) :: !steps;
    let r = Env.step env (Env.action_of_index a) in
    if r.Env.finished then begin
      finished := true;
      success := r.Env.reward > 0.5
    end
  done;
  (!success, List.rev !steps)

type transition = { obs : Nd.t; action : int; reward : float; next_obs : Nd.t option }

(** Train for [episodes] episodes with the paper's Deep-Q-Learning setup
    (Sec. 2, Appendix C.4): the symbolic program's [next_action] probability
    is the Q-value of each action; transitions go into a replay buffer and
    each episode trains on a sampled batch with TD targets
    [rᵢ + γ·max_a Q(sᵢ₊₁, a)] flowing through the logic program.  Episodes
    that end in success additionally relabel their own steps with target 1
    (the realized path was enemy-free).  Returns the greedy success rate
    over [eval_episodes]. *)
let train_and_eval ?(grid = 5) ?(dim = 12) ?(noise = 0.3) ?(episodes = 60)
    ?(eval_episodes = 100) ?(violation_weight = 0.1) ?(gamma = 0.99) ?(batch = 12)
    ?(buffer_size = 3000) (config : Common.config) : Common.report =
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let env = Env.create ~grid ~noise ~dim ~max_steps:30 ~seed:(config.Common.seed + 1) () in
  let m = create_model ~rng ~dim ~grid in
  let opt = Optim.adam ~lr:config.Common.lr (Layers.Mlp.params m.mlp) in
  let spec = config.Common.provenance in
  let losses = ref [] in
  let buffer = Array.make buffer_size { obs = Nd.zeros [| 1; 1 |]; action = 0; reward = 0.0; next_obs = None } in
  let buf_len = ref 0 and buf_pos = ref 0 in
  let push tr =
    buffer.(!buf_pos) <- tr;
    buf_pos := (!buf_pos + 1) mod buffer_size;
    buf_len := min (!buf_len + 1) buffer_size
  in
  let train_on (tr : transition) =
    let target =
      match tr.next_obs with
      | None -> tr.reward
      | Some next ->
          let d' = forward ~spec m next in
          Float.min 1.0 (Float.max 0.0 (tr.reward +. (gamma *. Nd.max_elt (Autodiff.value d'.action_probs))))
    in
    let d = forward ~spec m tr.obs in
    let chosen =
      let selv = Nd.zeros [| 4; 1 |] in
      Nd.set2 selv tr.action 0 1.0;
      Autodiff.matmul d.action_probs (Autodiff.const selv)
    in
    let loss = Common.bce chosen (Autodiff.const (Nd.scalar target)) in
    let loss = Autodiff.add loss (Autodiff.scale violation_weight (Autodiff.sum d.violation)) in
    opt.Optim.zero_grad ();
    Autodiff.backward loss;
    opt.Optim.step ();
    Nd.get1 (Autodiff.value loss) 0
  in
  (* Periodic greedy evaluation with best-checkpoint selection: RL training
     through the bandit-style credit assignment is not monotone (late
     training can destabilize a good policy), so we keep the best extractor
     weights seen — standard early stopping. *)
  let snapshot () = List.map (fun (p : Autodiff.t) -> Nd.copy p.Autodiff.value) (Layers.Mlp.params m.mlp) in
  let restore snap =
    List.iter2
      (fun (p : Autodiff.t) v -> Array.blit v.Nd.data 0 p.Autodiff.value.Nd.data 0 (Nd.numel v))
      (Layers.Mlp.params m.mlp) snap
  in
  let quick_eval n =
    let ok = ref 0 in
    for _ = 1 to n do
      let success, _ = play_episode ~spec ~rng m env in
      if success then incr ok
    done;
    float_of_int !ok /. float_of_int n
  in
  let best_score = ref (-1.0) in
  let best_snap = ref (snapshot ()) in
  let eval_every = 20 in
  let t0 = Scallop_utils.Monotonic.now () in
  for ep = 1 to episodes do
    let epsilon = 0.4 *. Float.max 0.0 (1.0 -. (float_of_int ep /. (0.7 *. float_of_int episodes))) in
    Env.reset env;
    let episode = ref [] in
    let finished = ref false in
    while not !finished do
      let obs = Env.observe env in
      let d = forward ~spec m obs in
      let a =
        if Scallop_utils.Rng.float rng < epsilon then Scallop_utils.Rng.int rng 4
        else Nd.argmax_row (Autodiff.value d.action_probs) 0
      in
      let r = Env.step env (Env.action_of_index a) in
      let next_obs = if r.Env.finished then None else Some (Env.observe env) in
      let tr = { obs; action = a; reward = r.Env.reward; next_obs } in
      episode := tr :: !episode;
      finished := r.Env.finished
    done;
    let succeeded =
      match !episode with { reward; next_obs = None; _ } :: _ -> reward > 0.5 | _ -> false
    in
    let ep_loss = ref 0.0 in
    let n_updates = ref 0 in
    let update tr =
      incr n_updates;
      ep_loss := !ep_loss +. train_on tr
    in
    if succeeded then
      (* dense relabeling: the realized path was enemy-free, so every step's
         action was good; these transitions also enter the (success-only)
         replay buffer *)
      List.iter
        (fun tr ->
          let tr = { tr with reward = 1.0; next_obs = None } in
          push tr;
          update tr)
        !episode
    else
      (* on-policy TD pass over the episode's own steps *)
      List.iter update !episode;
    (* replay positive experience to amplify the sparse success signal *)
    for _ = 1 to batch do
      if !buf_len > 0 then update buffer.(Scallop_utils.Rng.int rng !buf_len)
    done;
    losses := (!ep_loss /. float_of_int (max 1 !n_updates)) :: !losses;
    if ep mod eval_every = 0 || ep = episodes then begin
      let score = quick_eval 20 in
      if score > !best_score then begin
        best_score := score;
        best_snap := snapshot ()
      end
    end
  done;
  restore !best_snap;
  let train_time = Scallop_utils.Monotonic.now () -. t0 in
  let successes = ref 0 in
  for _ = 1 to eval_episodes do
    let success, _ = play_episode ~spec ~rng m env in
    if success then incr successes
  done;
  {
    Common.task = "PacMan-Maze";
    provenance = Common.provenance_name spec;
    faults = Scallop_utils.Faults.create ();
    accuracy = float_of_int !successes /. float_of_int eval_episodes;
    epoch_time = train_time /. float_of_int episodes;
    losses = List.rev !losses;
  }
