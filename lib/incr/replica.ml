(** WAL shipping, hot-standby replay, and supervised failover over
    {!Durable}.

    A {b primary} registry streams every committed WAL record — plus
    segment seals and snapshot generations — as checksummed {e frames}
    into a {e ship log}: an append-only directory of {!Scallop_utils.Wal}
    segments that one or more follower processes tail.  A {b follower}
    replays the frames through {!Durable}'s remote-apply commit path into
    warm standby sessions (queries allowed, writes refused), writes
    cursor acknowledgements into its own ack log, and can be {e promoted}
    at any moment — after which it accepts writes and the deposed primary
    is fenced.

    The transport is the filesystem: primary and followers share the ship
    directory (same machine or a shared mount).  The ship log itself is
    written without fsync — it is transport, not the durability story;
    durability is each node's own fsync'd session WAL.  A follower fsyncs
    its local WAL {e before} acknowledging a frame, so a
    quorum-acknowledged write is on stable storage on a quorum of nodes.

    {2 Frame protocol}

    Each ship segment is a {!Scallop_utils.Wal} file whose records encode:

    - [F_epoch]: opens every segment — the writer's fencing epoch and id;
    - [F_op]: one committed session op — sid, (segment, lsn) position, the
      {e exact} WAL record bytes, and the per-segment FNV-1a checksum
      chain after the record;
    - [F_seal]: a session segment closed at compaction, carrying last lsn,
      record count, and final chain for divergence detection;
    - [F_snapshot]: a snapshot generation — the catch-up bridge for
      followers that lagged past segment pruning, and the barrier content
      heading each ship segment (every segment opens with snapshots of
      all live sessions, so a follower can start from the newest segment
      alone and old segments can be pruned).

    {2 Fencing}

    The ship directory holds an [EPOCH] file naming the current epoch and
    its holder.  A primary claims epoch [e+1] at startup.  Promotion
    drains the ship log, claims a strictly larger epoch (refusing with a
    typed [Fenced] error otherwise — double promotion), fsyncs a fencing
    ack record, and flips the standby to accepting writes.  A primary
    verifies the epoch on every acknowledgement barrier: acks from other
    epochs do not count toward quorum, and an epoch bump observed in the
    [EPOCH] file or an ack log permanently fences the primary — every
    subsequent write errors with [Fenced] rather than acknowledging data
    the new primary may lack. *)

open Scallop_core
module Wal = Scallop_utils.Wal
module Atomic_io = Scallop_utils.Atomic_io

let invalid_input fmt = Session.invalid_input fmt

(* ---- ship-directory layout ---------------------------------------------------- *)

let ship_name k = Printf.sprintf "ship-%09d.log" k
let ship_path dir k = Filename.concat dir (ship_name k)

let ship_seg_of_name name =
  if
    String.length name = 18
    && String.equal (String.sub name 0 5) "ship-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 5 9)
  else None

let ship_segments dir : int list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names -> Array.to_list names |> List.filter_map ship_seg_of_name |> List.sort compare

let ack_name fid = "ack-" ^ Durable.encode_sid fid ^ ".log"
let ack_path dir fid = Filename.concat dir (ack_name fid)

let ack_fid_of_name name =
  let n = String.length name in
  if n > 8 && String.equal (String.sub name 0 4) "ack-" && Filename.check_suffix name ".log"
  then Some (Durable.decode_sid (String.sub name 4 (n - 8)))
  else None

let epoch_path dir = Filename.concat dir "EPOCH"
let hb_path dir = Filename.concat dir "HEARTBEAT"

(* The EPOCH file rides in an Atomic_io envelope: atomically replaced,
   checksummed, torn-write-proof.  Payload is "<epoch> <holder>". *)
let read_epoch dir : (int * string) option =
  match Atomic_io.read_file ~path:(epoch_path dir) with
  | Error _ -> None
  | Ok payload -> (
      match String.index_opt payload ' ' with
      | None -> None
      | Some i -> (
          match int_of_string_opt (String.sub payload 0 i) with
          | None -> None
          | Some e -> Some (e, String.sub payload (i + 1) (String.length payload - i - 1))))

let write_epoch dir ~epoch ~holder =
  Atomic_io.write_file ~path:(epoch_path dir) (Printf.sprintf "%d %s" epoch holder)

(* ---- frame codec --------------------------------------------------------------- *)

type frame =
  | F_epoch of { epoch : int; primary : string }
  | F_op of { sid : string; seg : int; lsn : int; chain : int64; payload : string }
  | F_seal of { sid : string; seg : int; last_lsn : int; chain : int64; records : int }
  | F_snapshot of { sid : string; gen : int; lsn : int; payload : string }

let encode_frame (f : frame) : string =
  let b = Buffer.create 64 in
  (match f with
  | F_epoch { epoch; primary } ->
      Durable.add_u8 b (Char.code 'E');
      Durable.add_i64 b epoch;
      Durable.add_str b primary
  | F_op { sid; seg; lsn; chain; payload } ->
      Durable.add_u8 b (Char.code 'O');
      Durable.add_str b sid;
      Durable.add_i64 b seg;
      Durable.add_i64 b lsn;
      Buffer.add_int64_le b chain;
      Durable.add_str b payload
  | F_seal { sid; seg; last_lsn; chain; records } ->
      Durable.add_u8 b (Char.code 'S');
      Durable.add_str b sid;
      Durable.add_i64 b seg;
      Durable.add_i64 b last_lsn;
      Buffer.add_int64_le b chain;
      Durable.add_i64 b records
  | F_snapshot { sid; gen; lsn; payload } ->
      Durable.add_u8 b (Char.code 'N');
      Durable.add_str b sid;
      Durable.add_i64 b gen;
      Durable.add_i64 b lsn;
      Durable.add_str b payload);
  Buffer.contents b

let decode_frame (payload : string) : frame =
  let c = { Durable.buf = payload; pos = 0 } in
  let f =
    match Char.chr (Durable.u8 c) with
    | 'E' ->
        let epoch = Durable.int_ c in
        let primary = Durable.str c in
        F_epoch { epoch; primary }
    | 'O' ->
        let sid = Durable.str c in
        let seg = Durable.int_ c in
        let lsn = Durable.int_ c in
        let chain = Durable.i64 c in
        let payload = Durable.str c in
        F_op { sid; seg; lsn; chain; payload }
    | 'S' ->
        let sid = Durable.str c in
        let seg = Durable.int_ c in
        let last_lsn = Durable.int_ c in
        let chain = Durable.i64 c in
        let records = Durable.int_ c in
        F_seal { sid; seg; last_lsn; chain; records }
    | 'N' ->
        let sid = Durable.str c in
        let gen = Durable.int_ c in
        let lsn = Durable.int_ c in
        let payload = Durable.str c in
        F_snapshot { sid; gen; lsn; payload }
    | ch -> raise (Durable.Decode (Printf.sprintf "unknown frame tag %C" ch))
  in
  if c.Durable.pos <> String.length payload then
    raise (Durable.Decode "trailing bytes in frame");
  f

(* Ack records: the follower's durable cursor.  (epoch, seg, idx) says
   "every frame of ship segment [seg] up to index [idx] is applied and
   locally fsync'd, under epoch [epoch]".  [fence] marks a promotion. *)
type ack = { a_epoch : int; a_seg : int; a_idx : int; a_fence : bool }

let encode_ack (a : ack) : string =
  let b = Buffer.create 32 in
  Durable.add_i64 b a.a_epoch;
  Durable.add_i64 b a.a_seg;
  Durable.add_i64 b a.a_idx;
  Durable.add_u8 b (if a.a_fence then 1 else 0);
  Buffer.contents b

let decode_ack (payload : string) : ack =
  let c = { Durable.buf = payload; pos = 0 } in
  let a_epoch = Durable.int_ c in
  let a_seg = Durable.int_ c in
  let a_idx = Durable.int_ c in
  let a_fence = Durable.u8 c <> 0 in
  { a_epoch; a_seg; a_idx; a_fence }

(* ---- primary -------------------------------------------------------------------- *)

type ack_mode = Ack_none | Ack_async | Ack_quorum

let ack_mode_of_string = function
  | "none" -> Some Ack_none
  | "async" -> Some Ack_async
  | "quorum" -> Some Ack_quorum
  | _ -> None

let ack_mode_string = function
  | Ack_none -> "none"
  | Ack_async -> "async"
  | Ack_quorum -> "quorum"

module Primary = struct
  type stats = {
    mutable shipped : int;  (** frames written to the ship log *)
    mutable rotations : int;
    mutable barriers : int;
    mutable barrier_wait : float;  (** cumulative seconds blocked in quorum waits *)
    mutable max_barrier_wait : float;
  }

  type t = {
    dir : string;
    id : string;
    epoch : int;
    ack : ack_mode;
    cluster : int;  (** follower count quorum is computed against *)
    ack_timeout : float;
    segment_frames : int;  (** rotate the ship log every this many frames *)
    retain : int;  (** rotated ship segments kept behind the active one *)
    pump : (unit -> unit) option;
        (** test hook: advance in-process followers instead of sleeping *)
    m : Mutex.t;
    mutable wal : Wal.t;
    mutable seg : int;
    mutable frames : int;  (** frames in the active ship segment *)
    mutable fenced : int option;  (** the epoch that deposed us *)
    mutable acks : (string * ack) list;  (** newest ack per follower *)
    mutable tails : (string * Wal.Tail.t) list;
    stats : stats;
  }

  let heartbeat p =
    try
      Atomic_io.write_file ~path:(hb_path p.dir)
        (Printf.sprintf "%d %s" p.epoch p.id)
    with Unix.Unix_error _ | Sys_error _ -> ()

  let ship_locked p (f : frame) =
    Durable.io_guard (fun () -> Wal.append p.wal (encode_frame f));
    p.frames <- p.frames + 1;
    p.stats.shipped <- p.stats.shipped + 1

  (** Claim the next fencing epoch and open a fresh ship segment.  A
      restarting primary bumps the epoch — followers accept any epoch at
      least as new as the one they last saw. *)
  let create ~dir ~id ?(ack = Ack_async) ?(cluster = 1) ?(ack_timeout = 5.0)
      ?(segment_frames = 4096) ?(retain = 2) ?pump () : t =
    if cluster < 1 then invalid_arg "Replica.Primary.create: cluster must be >= 1";
    if segment_frames < 2 then
      invalid_arg "Replica.Primary.create: segment_frames must be >= 2";
    Durable.io_guard (fun () -> Atomic_io.mkdir_p dir);
    let cur = match read_epoch dir with Some (e, _) -> e | None -> 0 in
    let epoch = cur + 1 in
    Durable.io_guard (fun () -> write_epoch dir ~epoch ~holder:id);
    let seg = match List.rev (ship_segments dir) with s :: _ -> s + 1 | [] -> 1 in
    let wal =
      Durable.io_guard (fun () -> Wal.open_append ~sync:false ~path:(ship_path dir seg) ())
    in
    let p =
      {
        dir;
        id;
        epoch;
        ack;
        cluster;
        ack_timeout;
        segment_frames;
        retain;
        pump;
        m = Mutex.create ();
        wal;
        seg;
        frames = 0;
        fenced = None;
        acks = [];
        tails = [];
        stats =
          {
            shipped = 0;
            rotations = 0;
            barriers = 0;
            barrier_wait = 0.;
            max_barrier_wait = 0.;
          };
      }
    in
    ship_locked p (F_epoch { epoch; primary = id });
    heartbeat p;
    p

  (* Drain every follower ack log, keeping the newest record per
     follower.  Any ack from a larger epoch — fencing or not — means a
     follower was promoted over us. *)
  let refresh_acks_locked p =
    (match Sys.readdir p.dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun name ->
            match ack_fid_of_name name with
            | Some fid when not (List.mem_assoc fid p.tails) ->
                p.tails <-
                  (fid, Wal.Tail.create ~path:(Filename.concat p.dir name) ()) :: p.tails
            | _ -> ())
          names);
    List.iter
      (fun (fid, tail) ->
        match Wal.Tail.poll tail with
        | Error _ -> ()
        | Ok records ->
            List.iter
              (fun r ->
                match decode_ack r with
                | a ->
                    p.acks <- (fid, a) :: List.remove_assoc fid p.acks;
                    if a.a_epoch > p.epoch || (a.a_fence && a.a_epoch >= p.epoch) then
                      p.fenced <-
                        Some
                          (match p.fenced with
                          | Some e -> max e a.a_epoch
                          | None -> a.a_epoch)
                | exception Durable.Decode _ -> ())
              records)
      p.tails

  let check_epoch_locked p =
    match read_epoch p.dir with
    | Some (e, _) when e > p.epoch ->
        p.fenced <- Some (max e (match p.fenced with Some f -> f | None -> 0))
    | _ -> ()

  let raise_fenced p e = raise (Session.Error (Exec_error.Fenced { epoch = p.epoch; current = e }))

  (* The acknowledgement barrier, run after every state-changing op's
     local durability is settled.  Quorum mode blocks until cluster/2+1
     followers have acknowledged the current ship position under our
     epoch, then verifies the EPOCH file one last time — the fencing
     handshake: a quorum of acks means nothing if the epoch has moved. *)
  let barrier p =
    Mutex.lock p.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock p.m)
      (fun () ->
        p.stats.barriers <- p.stats.barriers + 1;
        (match p.fenced with Some e -> raise_fenced p e | None -> ());
        match p.ack with
        | Ack_none -> ()
        | Ack_async ->
            (* non-blocking: drain acks for lag accounting and fence
               detection; verify the epoch file periodically *)
            refresh_acks_locked p;
            if p.stats.barriers land 31 = 0 then check_epoch_locked p;
            (match p.fenced with Some e -> raise_fenced p e | None -> ())
        | Ack_quorum ->
            let target_seg = p.seg and target_idx = p.frames in
            let quorum = (p.cluster / 2) + 1 in
            let t0 = Unix.gettimeofday () in
            let caught (a : ack) =
              a.a_epoch = p.epoch
              && (a.a_seg > target_seg || (a.a_seg = target_seg && a.a_idx >= target_idx))
            in
            let rec wait () =
              refresh_acks_locked p;
              (match p.fenced with Some e -> raise_fenced p e | None -> ());
              let n = List.length (List.filter (fun (_, a) -> caught a) p.acks) in
              if n >= quorum then ()
              else begin
                let waited = Unix.gettimeofday () -. t0 in
                if waited > p.ack_timeout then
                  raise
                    (Session.Error (Exec_error.Ack_timeout { acked = n; quorum; waited }));
                (match p.pump with Some f -> f () | None -> Unix.sleepf 0.0005);
                wait ()
              end
            in
            wait ();
            check_epoch_locked p;
            (match p.fenced with Some e -> raise_fenced p e | None -> ());
            let waited = Unix.gettimeofday () -. t0 in
            p.stats.barrier_wait <- p.stats.barrier_wait +. waited;
            if waited > p.stats.max_barrier_wait then p.stats.max_barrier_wait <- waited)

  (** The {!Durable.repl_sink} gluing this primary under a registry. *)
  let sink (p : t) : Durable.repl_sink =
    {
      Durable.rs_emit =
        (fun ev ->
          Mutex.lock p.m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock p.m)
            (fun () ->
              ship_locked p
                (match ev with
                | Durable.Ev_op { sid; seg; lsn; chain; payload } ->
                    F_op { sid; seg; lsn; chain; payload }
                | Durable.Ev_seal { sid; seg; last_lsn; chain; records } ->
                    F_seal { sid; seg; last_lsn; chain; records }
                | Durable.Ev_snapshot { sid; gen; lsn; payload } ->
                    F_snapshot { sid; gen; lsn; payload })));
      rs_rotation_due = (fun () -> p.frames >= p.segment_frames);
      rs_rotate_begin =
        (fun () ->
          Mutex.lock p.m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock p.m)
            (fun () ->
              Wal.close p.wal;
              p.seg <- p.seg + 1;
              p.wal <-
                Durable.io_guard (fun () ->
                    Wal.open_append ~sync:false ~path:(ship_path p.dir p.seg) ());
              p.frames <- 0;
              p.stats.rotations <- p.stats.rotations + 1;
              ship_locked p (F_epoch { epoch = p.epoch; primary = p.id })));
      rs_rotate_end =
        (fun () ->
          Mutex.lock p.m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock p.m)
            (fun () ->
              List.iter
                (fun k ->
                  if k < p.seg - p.retain then
                    try Sys.remove (ship_path p.dir k) with Sys_error _ -> ())
                (ship_segments p.dir)));
      rs_barrier = (fun () -> barrier p);
    }

  type status = {
    st_epoch : int;
    st_seg : int;
    st_frames : int;
    st_shipped : int;
    st_rotations : int;
    st_barriers : int;
    st_mean_barrier_ms : float;
    st_max_barrier_ms : float;
    st_fenced : int option;
    st_followers : (string * ack) list;
  }

  let status p : status =
    Mutex.lock p.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock p.m)
      (fun () ->
        refresh_acks_locked p;
        {
          st_epoch = p.epoch;
          st_seg = p.seg;
          st_frames = p.frames;
          st_shipped = p.stats.shipped;
          st_rotations = p.stats.rotations;
          st_barriers = p.stats.barriers;
          st_mean_barrier_ms =
            (if p.stats.barriers = 0 then 0.
             else 1000. *. p.stats.barrier_wait /. float_of_int p.stats.barriers);
          st_max_barrier_ms = 1000. *. p.stats.max_barrier_wait;
          st_fenced = p.fenced;
          st_followers = List.sort compare p.acks;
        })

  let close p =
    Mutex.lock p.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock p.m) (fun () -> Wal.close p.wal)
end

(* ---- follower -------------------------------------------------------------------- *)

module Follower = struct
  type stats = {
    mutable applied : int;  (** op frames applied to the standby *)
    mutable skipped : int;  (** frames skipped (idempotent replay, closed sids) *)
    mutable installs : int;  (** full snapshot transfers *)
    mutable adoptions : int;  (** snapshots adopted as the local compaction point *)
    mutable seals : int;  (** segment seals verified *)
    mutable resyncs : int;  (** sessions parked awaiting a snapshot *)
    mutable divergences : int;
  }

  type t = {
    dir : string;
    fid : string;
    mgr : Durable.t;
    m : Mutex.t;
    ack : Wal.t;
    mutable seg : int;  (** ship segment being tailed; 0 = not attached *)
    mutable idx : int;  (** frames consumed in that segment *)
    mutable tail : Wal.Tail.t option;
    mutable epoch : int;  (** newest epoch observed in the stream *)
    mutable promoted : bool;
    await : (string, unit) Hashtbl.t;  (** sids parked until a snapshot bridges them *)
    mutable last_error : string option;
    stats : stats;
  }

  (** Attach a standby registry to a ship directory.  [mgr] must have a
      state dir (the replica's own durability) and is flipped to standby:
      client writes are refused until {!promote}. *)
  let create ~dir ~fid ~mgr () : t =
    Durable.io_guard (fun () -> Atomic_io.mkdir_p dir);
    Durable.set_standby mgr true;
    let ack =
      Durable.io_guard (fun () -> Wal.open_append ~sync:false ~path:(ack_path dir fid) ())
    in
    {
      dir;
      fid;
      mgr;
      m = Mutex.create ();
      ack;
      seg = 0;
      idx = 0;
      tail = None;
      epoch = (match read_epoch dir with Some (e, _) -> e | None -> 0);
      promoted = false;
      await = Hashtbl.create 8;
      last_error = None;
      stats =
        {
          applied = 0;
          skipped = 0;
          installs = 0;
          adoptions = 0;
          seals = 0;
          resyncs = 0;
          divergences = 0;
        };
    }

  let park f sid =
    if not (Hashtbl.mem f.await sid) then begin
      Hashtbl.replace f.await sid ();
      f.stats.resyncs <- f.stats.resyncs + 1
    end

  let handle_frame f (frame : frame) =
    f.idx <- f.idx + 1;
    match frame with
    | F_epoch { epoch; _ } -> if epoch > f.epoch then f.epoch <- epoch
    | F_op { sid; seg; lsn; chain; payload } ->
        let apply () =
          try
            Durable.apply_remote f.mgr ~sid ~seg ~lsn ~chain ~payload;
            f.stats.applied <- f.stats.applied + 1
          with Session.Error e ->
            f.stats.divergences <- f.stats.divergences + 1;
            f.last_error <- Some (Session.error_string e);
            park f sid
        in
        if Hashtbl.mem f.await sid then f.stats.skipped <- f.stats.skipped + 1
        else begin
          match Durable.remote_watermark f.mgr ~sid with
          | None ->
              (* lsn 0 is the open record; anything else for an unknown
                 session means we lagged past its history *)
              if lsn = 0 then apply () else park f sid
          | Some wm ->
              if wm.Durable.wm_closed then f.stats.skipped <- f.stats.skipped + 1
              else if wm.wm_failed then park f sid
              else if lsn = 0 then f.stats.skipped <- f.stats.skipped + 1
              else if lsn < wm.wm_next_lsn then f.stats.skipped <- f.stats.skipped + 1
              else if lsn = wm.wm_next_lsn && seg = wm.wm_seg then apply ()
              else park f sid (* gap: lag past pruning or segment misalignment *)
        end
    | F_seal { sid; seg; last_lsn; chain; records } ->
        if Hashtbl.mem f.await sid then f.stats.skipped <- f.stats.skipped + 1
        else begin
          match Durable.remote_watermark f.mgr ~sid with
          | None -> f.stats.skipped <- f.stats.skipped + 1
          | Some wm ->
              if wm.Durable.wm_closed then f.stats.skipped <- f.stats.skipped + 1
              else if wm.wm_failed then park f sid
              else if seg < wm.wm_seg then f.stats.skipped <- f.stats.skipped + 1
              else if seg = wm.wm_seg then begin
                try
                  Durable.seal_remote f.mgr ~sid ~seg ~last_lsn ~chain ~records;
                  f.stats.seals <- f.stats.seals + 1
                with Session.Error e ->
                  f.stats.divergences <- f.stats.divergences + 1;
                  f.last_error <- Some (Session.error_string e);
                  park f sid
              end
              else park f sid
        end
    | F_snapshot { sid; gen; payload; _ } -> (
        try
          (match Durable.install_snapshot f.mgr ~sid ~gen ~payload with
          | Durable.Installed -> f.stats.installs <- f.stats.installs + 1
          | Durable.Adopted -> f.stats.adoptions <- f.stats.adoptions + 1
          | Durable.Skipped -> f.stats.skipped <- f.stats.skipped + 1);
          Hashtbl.remove f.await sid
        with Session.Error e ->
          f.stats.divergences <- f.stats.divergences + 1;
          f.last_error <- Some (Session.error_string e))

  let write_ack_locked f ~fence =
    Durable.io_guard (fun () ->
        Wal.append f.ack
          (encode_ack { a_epoch = f.epoch; a_seg = f.seg; a_idx = f.idx; a_fence = fence });
        if fence then Wal.sync_now f.ack)

  (* Move the cursor to ship segment [s]. *)
  let attach_locked f s =
    f.seg <- s;
    f.idx <- 0;
    f.tail <- Some (Wal.Tail.create ~path:(ship_path f.dir s) ())

  let poll_locked f : int =
    if f.promoted then 0
    else begin
      let progress = ref 0 in
      let continue = ref true in
      while !continue do
        continue := false;
        (match f.tail with
        | Some _ -> ()
        | None -> (
            (* first attach: the newest segment opens with a full barrier,
               so it alone is enough to sync from *)
            match List.rev (ship_segments f.dir) with
            | s :: _ -> attach_locked f s
            | [] -> ()));
        match f.tail with
        | None -> ()
        | Some tail -> (
            match Wal.Tail.poll tail with
            | Ok [] -> (
                (* hand-off: the primary only writes one segment at a time,
                   so a newer segment existing means this one is finished *)
                match List.filter (fun s -> s > f.seg) (ship_segments f.dir) with
                | s :: _ ->
                    attach_locked f s;
                    continue := true
                | [] -> ())
            | Ok frames ->
                List.iter
                  (fun payload ->
                    match decode_frame payload with
                    | frame -> handle_frame f frame
                    | exception Durable.Decode msg ->
                        f.idx <- f.idx + 1;
                        f.last_error <- Some ("undecodable frame: " ^ msg))
                  frames;
                (* settle local durability for the whole batch with one
                   flush, then acknowledge the new cursor *)
                Durable.flush f.mgr;
                write_ack_locked f ~fence:false;
                progress := !progress + List.length frames;
                continue := true
            | Error reason -> (
                f.last_error <- Some ("ship segment damaged: " ^ reason);
                (* jump forward if the primary has moved on; the barrier
                   heading the next segment resyncs us *)
                match List.filter (fun s -> s > f.seg) (ship_segments f.dir) with
                | s :: _ ->
                    attach_locked f s;
                    continue := true
                | [] -> ()))
      done;
      !progress
    end

  (** Consume every frame currently visible in the ship log; returns how
      many were processed.  Safe to call in a tight loop or a poller
      domain; a promoted follower is inert and returns 0. *)
  let poll f : int =
    Mutex.lock f.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock f.m) (fun () -> poll_locked f)

  (** Promote this follower: drain the ship log, claim a strictly newer
      fencing epoch (typed [Fenced] rejection otherwise — this is what
      makes a second promotion with a stale epoch fail), fsync a fencing
      ack so the deposed primary observes it, and open the standby for
      writes.  Returns the claimed epoch. *)
  let promote ?epoch f : int =
    Mutex.lock f.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock f.m)
      (fun () ->
        if f.promoted then invalid_input "follower %s is already promoted" f.fid;
        let rec drain () = if poll_locked f > 0 then drain () in
        drain ();
        let cur = match read_epoch f.dir with Some (e, _) -> e | None -> f.epoch in
        let e = match epoch with Some e -> e | None -> max cur f.epoch + 1 in
        if e <= cur then
          raise (Session.Error (Exec_error.Fenced { epoch = e; current = cur }));
        Durable.io_guard (fun () -> write_epoch f.dir ~epoch:e ~holder:f.fid);
        f.epoch <- e;
        write_ack_locked f ~fence:true;
        Durable.set_standby f.mgr false;
        f.promoted <- true;
        e)

  (** Seconds since the primary's last heartbeat, if one was ever
      written. *)
  let primary_age f : float option =
    match Unix.stat (hb_path f.dir) with
    | st -> Some (Unix.gettimeofday () -. st.Unix.st_mtime)
    | exception (Unix.Unix_error _ | Sys_error _) -> None

  type status = {
    st_epoch : int;
    st_seg : int;
    st_idx : int;
    st_promoted : bool;
    st_awaiting : int;
    st_applied : int;
    st_skipped : int;
    st_installs : int;
    st_adoptions : int;
    st_seals : int;
    st_divergences : int;
    st_primary_age : float option;
    st_last_error : string option;
    st_sessions : (string * int * int) list;  (** sid, next lsn, active segment *)
  }

  let status f : status =
    Mutex.lock f.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock f.m)
      (fun () ->
        {
          st_epoch = f.epoch;
          st_seg = f.seg;
          st_idx = f.idx;
          st_promoted = f.promoted;
          st_awaiting = Hashtbl.length f.await;
          st_applied = f.stats.applied;
          st_skipped = f.stats.skipped;
          st_installs = f.stats.installs;
          st_adoptions = f.stats.adoptions;
          st_seals = f.stats.seals;
          st_divergences = f.stats.divergences;
          st_primary_age = primary_age f;
          st_last_error = f.last_error;
          st_sessions = Durable.session_watermarks f.mgr;
        })

  let close f =
    Mutex.lock f.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock f.m) (fun () -> Wal.close f.ack)
end
