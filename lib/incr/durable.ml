(** Durable incremental sessions: write-ahead logging, crash-consistent
    recovery, and idle eviction over {!Incr}.

    A {!t} manages a registry of named incremental sessions and — when given
    a [state_dir] — makes them survive process death.  The machinery:

    - {b Write-ahead log.}  Every state-changing op ([open]/[assert]/
      [retract]/[close]) is validated, appended to the session's WAL segment
      ({!Scallop_utils.Wal}: checksummed records, fsync'd before the append
      returns, torn-tail tolerant), and only then applied to the in-memory
      {!Incr.t}.  Validation-first means a logged record is always
      replayable; log-before-apply means an acknowledged op is always
      recoverable.  Ops carry a monotone per-session sequence number (lsn),
      which is what makes replay exactly-once.
    - {b Compacted snapshots.}  Every [snapshot_every] ops the session's
      current EDB overlay is serialized through {!Scallop_utils.Atomic_io}
      (atomic rename, checksummed envelope, newest [keep_snapshots]
      generations retained) and the WAL rotates to a fresh segment, so
      recovery is newest-valid-snapshot + bounded replay rather than
      full-history replay.  Segment [k] holds exactly the ops recorded
      after snapshot generation [k-1]; a recovery that falls back from a
      damaged newest snapshot to an older generation finds every op it is
      missing in the retained segments, and the lsn filter keeps the
      overlap idempotent.
    - {b Recovery.}  {!create} scans [state_dir] and rebuilds every live
      session: newest snapshot generation that both checksums and decodes,
      then the segments, replaying records with lsn beyond the snapshot.
      The contract is bit-identity: a recovered session answers [query]
      exactly as the uncrashed session would (and as {!Incr.run_cold}),
      because the rebuilt overlay, canonical assertion order, and base RNG
      are precisely the state the log describes.  A session that cannot be
      rebuilt (corrupt non-tail record, program hash mismatch against its
      pinned [expect_hash], an op that no longer replays) is quarantined as
      {!Exec_error.Recovery_failed} — a per-session error reply, never a
      process failure — and can be discarded with {!close}.
    - {b Idle eviction.}  With [max_live] / [idle_ttl] set, cold sessions
      spill: a final snapshot makes the disk state current, the in-memory
      {!Incr.t} is dropped, and the next touch transparently rehydrates.
      Sessions with queries in flight are pinned and never spilled
      mid-query; {!close} drains pins before tearing down.

    Without a [state_dir] the registry still works (including pin-draining
    close) but nothing persists and nothing is evicted. *)

open Scallop_core
module Wal = Scallop_utils.Wal
module Atomic_io = Scallop_utils.Atomic_io

let invalid_input fmt = Session.invalid_input fmt

let recovery_failed ~session fmt =
  Fmt.kstr
    (fun reason ->
      raise (Session.Error (Exec_error.Recovery_failed { session; reason })))
    fmt

(* Filesystem faults during logging/snapshotting surface as typed runtime
   errors on the request, not process crashes. *)
let io_guard f =
  try f () with
  | Unix.Unix_error (e, op, arg) ->
      raise
        (Session.Error
           (Exec_error.Runtime_error
              { msg = Fmt.str "state-dir I/O failed: %s %s: %s" op arg (Unix.error_message e) }))
  | Sys_error msg ->
      raise (Session.Error (Exec_error.Runtime_error { msg = "state-dir I/O failed: " ^ msg }))

(* ---- binary codec ----------------------------------------------------------- *)

(* Ops and snapshots share one little-endian binary codec.  Floats travel
   as IEEE-754 bits, so probabilities round-trip bit-exactly — part of the
   recovery contract, not a nicety. *)

exception Decode of string

type cur = { buf : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.buf then raise (Decode "truncated field")

let u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let i64 c =
  need c 8;
  let v = String.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let int_ c = Int64.to_int (i64 c)
let f64 c = Int64.float_of_bits (i64 c)

let str c =
  let n = int_ c in
  if n < 0 || n > String.length c.buf then raise (Decode "bad string length");
  need c n;
  let v = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  v

let opt f c =
  match u8 c with 0 -> None | 1 -> Some (f c) | _ -> raise (Decode "bad option tag")

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let add_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let add_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let add_str b s =
  add_i64 b (String.length s);
  Buffer.add_string b s

let add_opt f b = function
  | None -> add_u8 b 0
  | Some v ->
      add_u8 b 1;
      f b v

let ty_code : Value.ty -> int = function
  | Value.I8 -> 0
  | Value.I16 -> 1
  | Value.I32 -> 2
  | Value.I64 -> 3
  | Value.ISize -> 4
  | Value.U8 -> 5
  | Value.U16 -> 6
  | Value.U32 -> 7
  | Value.U64 -> 8
  | Value.USize -> 9
  | Value.F32 -> 10
  | Value.F64 -> 11
  | Value.Bool -> 12
  | Value.Char -> 13
  | Value.Str -> 14

let ty_of_code = function
  | 0 -> Value.I8
  | 1 -> Value.I16
  | 2 -> Value.I32
  | 3 -> Value.I64
  | 4 -> Value.ISize
  | 5 -> Value.U8
  | 6 -> Value.U16
  | 7 -> Value.U32
  | 8 -> Value.U64
  | 9 -> Value.USize
  | 10 -> Value.F32
  | 11 -> Value.F64
  | 12 -> Value.Bool
  | 13 -> Value.Char
  | 14 -> Value.Str
  | n -> raise (Decode (Printf.sprintf "bad type code %d" n))

let add_value b : Value.t -> unit = function
  | Value.Int (ty, n) ->
      add_u8 b 0;
      add_u8 b (ty_code ty);
      add_i64 b n
  | Value.Float (ty, f) ->
      add_u8 b 1;
      add_u8 b (ty_code ty);
      add_f64 b f
  | Value.B x ->
      add_u8 b 2;
      add_u8 b (if x then 1 else 0)
  | Value.C ch ->
      add_u8 b 3;
      add_u8 b (Char.code ch)
  | Value.S s ->
      add_u8 b 4;
      add_str b s

let value c : Value.t =
  match u8 c with
  | 0 ->
      let ty = ty_of_code (u8 c) in
      Value.Int (ty, int_ c)
  | 1 ->
      let ty = ty_of_code (u8 c) in
      Value.Float (ty, f64 c)
  | 2 -> Value.B (u8 c <> 0)
  | 3 -> Value.C (Char.chr (u8 c))
  | 4 -> Value.S (str c)
  | n -> raise (Decode (Printf.sprintf "bad value tag %d" n))

let add_tuple b (t : Tuple.t) =
  add_i64 b (Array.length t);
  Array.iter (add_value b) t

let tuple c : Tuple.t =
  let n = int_ c in
  if n < 0 || n > 65536 then raise (Decode "bad tuple arity");
  Array.init n (fun _ -> value c)

let add_input b (i : Provenance.Input.t) =
  add_opt add_f64 b i.Provenance.Input.prob;
  add_opt add_i64 b i.Provenance.Input.me_group

let input c : Provenance.Input.t =
  let prob = opt f64 c in
  let me_group = opt int_ c in
  { Provenance.Input.prob; me_group }

(* ---- op records ------------------------------------------------------------- *)

type op =
  | Op_open of { expect_hash : string option; hash : string; spec : string; source : string }
  | Op_assert of { lsn : int; pred : string; input : Provenance.Input.t; tuple : Tuple.t }
  | Op_retract of { lsn : int; pred : string; tuple : Tuple.t }
  | Op_close of { lsn : int }

let op_lsn = function
  | Op_open _ -> 0
  | Op_assert { lsn; _ } | Op_retract { lsn; _ } | Op_close { lsn } -> lsn

let encode_op (op : op) : string =
  let b = Buffer.create 64 in
  (match op with
  | Op_open { expect_hash; hash; spec; source } ->
      add_u8 b (Char.code 'O');
      add_opt add_str b expect_hash;
      add_str b hash;
      add_str b spec;
      add_str b source
  | Op_assert { lsn; pred; input; tuple = t } ->
      add_u8 b (Char.code 'A');
      add_i64 b lsn;
      add_str b pred;
      add_input b input;
      add_tuple b t
  | Op_retract { lsn; pred; tuple = t } ->
      add_u8 b (Char.code 'R');
      add_i64 b lsn;
      add_str b pred;
      add_tuple b t
  | Op_close { lsn } ->
      add_u8 b (Char.code 'C');
      add_i64 b lsn);
  Buffer.contents b

let decode_op (payload : string) : op =
  let c = { buf = payload; pos = 0 } in
  let op =
    match Char.chr (u8 c) with
    | 'O' ->
        let expect_hash = opt str c in
        let hash = str c in
        let spec = str c in
        let source = str c in
        Op_open { expect_hash; hash; spec; source }
    | 'A' ->
        let lsn = int_ c in
        let pred = str c in
        let i = input c in
        let t = tuple c in
        Op_assert { lsn; pred; input = i; tuple = t }
    | 'R' ->
        let lsn = int_ c in
        let pred = str c in
        let t = tuple c in
        Op_retract { lsn; pred; tuple = t }
    | 'C' -> Op_close { lsn = int_ c }
    | ch -> raise (Decode (Printf.sprintf "unknown op tag %C" ch))
  in
  if c.pos <> String.length payload then raise (Decode "trailing bytes in op record");
  op

(* ---- snapshots -------------------------------------------------------------- *)

type snapshot = {
  sn_spec : string;
  sn_hash : string;
  sn_expect : string option;
  sn_source : string;
      (** the full program travels in every snapshot, so recovery never
          depends on segment 0 (the open record) surviving compaction *)
  sn_lsn : int;  (** every op with lsn <= this is folded into [sn_facts] *)
  sn_facts : (string * (Provenance.Input.t * Tuple.t) list) list;
      (** the overlay in canonical first-assertion order — the exact list
          {!Incr.current_facts} returned when the snapshot was taken *)
}

let snapshot_version = 1

let encode_snapshot (s : snapshot) : string =
  let b = Buffer.create 256 in
  add_u8 b snapshot_version;
  add_str b s.sn_spec;
  add_str b s.sn_hash;
  add_opt add_str b s.sn_expect;
  add_str b s.sn_source;
  add_i64 b s.sn_lsn;
  add_i64 b (List.length s.sn_facts);
  List.iter
    (fun (pred, facts) ->
      add_str b pred;
      add_i64 b (List.length facts);
      List.iter
        (fun (i, t) ->
          add_input b i;
          add_tuple b t)
        facts)
    s.sn_facts;
  Buffer.contents b

let decode_snapshot (payload : string) : snapshot =
  let c = { buf = payload; pos = 0 } in
  let v = u8 c in
  if v <> snapshot_version then
    raise (Decode (Printf.sprintf "unsupported snapshot version %d" v));
  let sn_spec = str c in
  let sn_hash = str c in
  let sn_expect = opt str c in
  let sn_source = str c in
  let sn_lsn = int_ c in
  let npreds = int_ c in
  if npreds < 0 || npreds > 1_000_000 then raise (Decode "bad predicate count");
  let sn_facts =
    List.init npreds (fun _ ->
        let pred = str c in
        let n = int_ c in
        if n < 0 || n > 100_000_000 then raise (Decode "bad fact count");
        let facts =
          List.init n (fun _ ->
              let i = input c in
              let t = tuple c in
              (i, t))
        in
        (pred, facts))
  in
  if c.pos <> String.length payload then raise (Decode "trailing bytes in snapshot");
  { sn_spec; sn_hash; sn_expect; sn_source; sn_lsn; sn_facts }

(* ---- directory layout -------------------------------------------------------- *)

(* STATE_DIR/sessions/s-<encoded sid>/
     wal-NNNNNNNNN.log             segment k: ops recorded after snapshot k-1
     snap/snapshot-NNNNNNNNN.ckpt  Atomic_io generations *)

let encode_sid sid =
  let b = Buffer.create (String.length sid + 2) in
  String.iter
    (fun ch ->
      match ch with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' -> Buffer.add_char b ch
      | ch -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code ch)))
    sid;
  Buffer.contents b

let decode_sid enc =
  let b = Buffer.create (String.length enc) in
  let n = String.length enc in
  let i = ref 0 in
  while !i < n do
    (if enc.[!i] = '%' && !i + 2 < n then
       match int_of_string_opt ("0x" ^ String.sub enc (!i + 1) 2) with
       | Some code ->
           Buffer.add_char b (Char.chr (code land 0xff));
           i := !i + 2
       | None -> Buffer.add_char b enc.[!i]
     else Buffer.add_char b enc.[!i]);
    incr i
  done;
  Buffer.contents b

let sessions_root state_dir = Filename.concat state_dir "sessions"
let dir_prefix = "s-"

let session_dir state_dir sid =
  Filename.concat (sessions_root state_dir) (dir_prefix ^ encode_sid sid)

let snap_dir dir = Filename.concat dir "snap"
let segment_name k = Printf.sprintf "wal-%09d.log" k
let segment_path dir k = Filename.concat dir (segment_name k)

let segment_of_name name =
  if
    String.length name = 17
    && String.equal (String.sub name 0 4) "wal-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 9)
  else None

let segments_of_dir dir : int list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names -> Array.to_list names |> List.filter_map segment_of_name |> List.sort compare

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

(* ---- replication events ------------------------------------------------------- *)

(* The per-segment checksum chain: every appended record folds into a
   running FNV-1a over (previous chain ‖ payload), reset at each segment
   rotation.  The primary ships the chain value after each op; a follower
   that replays the same bytes computes the same chain, so any divergence —
   a dropped frame, a mutated payload, a fork — is caught at the next
   frame, not at the next full resync. *)
let chain_add (chain : int64) (payload : string) : int64 =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 chain;
  Atomic_io.fnv1a64 (Bytes.unsafe_to_string b ^ payload)

(** What a primary tells its followers.  [Ev_op] carries the {e exact} WAL
    record bytes (so follower segments are byte-identical to the
    primary's), the segment and lsn it landed at, and the chain value
    after it.  [Ev_seal] closes a segment at compaction — the follower
    verifies its own chain against it before adopting the snapshot that
    follows.  [Ev_snapshot] is the snapshot generation itself: the bridge
    for followers too far behind to replay (lag past segment pruning) and
    the barrier content heading each ship-log segment. *)
type repl_event =
  | Ev_op of { sid : string; seg : int; lsn : int; chain : int64; payload : string }
  | Ev_seal of { sid : string; seg : int; last_lsn : int; chain : int64; records : int }
  | Ev_snapshot of { sid : string; gen : int; lsn : int; payload : string }

(** How the replication transport plugs in without {!Durable} knowing it
    exists.  [rs_emit], [rs_rotation_due], [rs_rotate_begin] and
    [rs_rotate_end] are called {b under the manager lock} — they must only
    write the ship log, never call back into the registry.  [rs_barrier]
    runs {b outside} the lock after an op's local durability is settled;
    it blocks for the configured acknowledgement level and raises typed
    [Session.Error]s ([Fenced], [Ack_timeout]) to veto the
    acknowledgement. *)
type repl_sink = {
  rs_emit : repl_event -> unit;
  rs_rotation_due : unit -> bool;  (** ship log wants a fresh segment *)
  rs_rotate_begin : unit -> unit;  (** open it (the epoch frame goes first) *)
  rs_rotate_end : unit -> unit;  (** barrier snapshots emitted; prune old segments *)
  rs_barrier : unit -> unit;
}

(* ---- configuration ------------------------------------------------------------ *)

type config = {
  state_dir : string option;
      (** [None]: in-memory registry — no durability, no eviction *)
  spec : Registry.spec;
  interp : Interp.config;
  snapshot_every : int;  (** ops between compaction snapshots *)
  keep_snapshots : int;  (** snapshot generations retained per session *)
  wal_sync : bool;  (** fsync each WAL append before acknowledging *)
  group_commit : bool;
      (** batch concurrent sessions' WAL fsyncs into one ({!Wal.Group});
          meaningless without [wal_sync] *)
  group_window : float;
      (** leader flush-gathering window in seconds (see {!Wal.Group}) *)
  max_live : int option;  (** LRU cap on hydrated sessions *)
  idle_ttl : float option;  (** spill sessions idle longer than this (seconds) *)
  now : unit -> float;  (** injectable clock for idle accounting *)
  repl : repl_sink option;  (** primary-side replication transport *)
  standby : bool;
      (** start as a replication standby: client writes are refused until
          {!set_standby}[ mgr false] promotes the registry *)
}

let config ?state_dir ?(snapshot_every = 64) ?(keep_snapshots = 3) ?(wal_sync = true)
    ?(group_commit = false) ?(group_window = 0.) ?max_live ?idle_ttl
    ?(now = Scallop_utils.Monotonic.now) ?(interp = Interp.default_config ()) ?repl
    ?(standby = false) (spec : Registry.spec) : config =
  if snapshot_every < 1 then invalid_arg "Durable.config: snapshot_every must be >= 1";
  if keep_snapshots < 1 then invalid_arg "Durable.config: keep_snapshots must be >= 1";
  if group_window < 0. then invalid_arg "Durable.config: group_window must be >= 0";
  {
    state_dir;
    spec;
    interp;
    snapshot_every;
    keep_snapshots;
    wal_sync;
    group_commit;
    group_window;
    max_live;
    idle_ttl;
    now;
    repl;
    standby;
  }

(* ---- manager state -------------------------------------------------------------- *)

type live = { incr : Incr.t; mutable wal : Wal.t option  (** opened lazily *) }

type state =
  | Live of live
  | Spilled  (** durable on disk; rehydrated on next touch *)
  | Failed of Exec_error.t
      (** recovery failed; every touch but [close] replies with this *)
  | Closed

type entry = {
  sid : string;
  dir : string option;
  source : string;
  hash : string;
  expect_hash : string option;
  mutable e_state : state;
  mutable next_lsn : int;
  mutable active_seg : int;
  mutable seg_chain : int64;  (** checksum chain over the active segment's records *)
  mutable seg_records : int;  (** records in the active segment *)
  mutable ops_since_snap : int;  (** unsnapshotted ops; bounds rehydration replay *)
  mutable last_used : float;
  mutable pins : int;  (** queries in flight; pinned entries are never spilled *)
  mutable last_stats : Incr.session_stats;  (** carried across spill / close *)
}

type stats = {
  mutable wal_appends : int;
  mutable wal_bytes : int;
  mutable wal_replayed : int;  (** op records replayed by recovery + rehydration *)
  mutable snapshots : int;
  mutable evictions : int;
  mutable rehydrations : int;
  mutable recovered : int;  (** sessions rebuilt alive at {!create} *)
  mutable recovery_failures : int;
  mutable remote_applied : int;  (** replicated ops applied on this standby *)
  mutable remote_installs : int;  (** snapshot transfers installed / adopted *)
  mutable divergences : int;  (** sessions quarantined as [Replication_diverged] *)
  mutable scrubs : int;  (** scrub sweeps completed *)
  mutable scrub_errors : int;  (** bit-rot findings of the latest sweep *)
}

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "wal-appends=%d wal-bytes=%d wal-replayed=%d snapshots=%d evictions=%d \
     rehydrations=%d recovered=%d recovery-failed=%d remote-applied=%d \
     remote-installs=%d diverged=%d scrubs=%d scrub-errors=%d"
    s.wal_appends s.wal_bytes s.wal_replayed s.snapshots s.evictions s.rehydrations
    s.recovered s.recovery_failures s.remote_applied s.remote_installs s.divergences
    s.scrubs s.scrub_errors

type t = {
  cfg : config;
  mutex : Mutex.t;
  unpinned : Condition.t;
  entries : (string, entry) Hashtbl.t;
  dstats : stats;
  wal_group : Wal.Group.t option;
  mutable role : [ `Primary | `Standby ];
  mutable max_ticket : int;  (** newest group-commit ticket issued; -1 if none *)
}

let locked mgr f =
  Mutex.lock mgr.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mgr.mutex) f

let stats mgr = mgr.dstats
let spec_name_of mgr = Registry.spec_name mgr.cfg.spec

(* ---- loading one session from disk ----------------------------------------------- *)

type loaded = {
  l_incr : Incr.t;
  l_source : string;
  l_hash : string;
  l_expect : string option;
  l_next_lsn : int;
  l_active_seg : int;
  l_seg_chain : int64;  (** checksum chain over the active segment's records *)
  l_seg_records : int;
  l_replayed : int;
  l_closed : bool;
}

(* A session directory with no snapshot and zero complete log records: the
   crash happened before the open was acknowledged, so the session never
   observably existed — its remains are discarded, not quarantined. *)
exception Never_opened

(* Newest snapshot generation that both checksums (Atomic_io envelope) and
   decodes — the generation fallback extended to the payload layer. *)
let load_snapshot ~sdir : snapshot option =
  let rec try_gens = function
    | [] -> None
    | g :: older -> (
        match Atomic_io.read_file ~path:(Atomic_io.path_of ~dir:sdir g) with
        | Error _ -> try_gens older
        | Ok payload -> (
            match decode_snapshot payload with
            | s -> Some s
            | exception Decode _ -> try_gens older))
  in
  try_gens (List.rev (Atomic_io.generations ~dir:sdir))

(** Rebuild one session from its directory.  Raises
    [Session.Error (Recovery_failed _)] on anything that cannot be
    attributed to a mid-write crash. *)
let load_session mgr ~sid ~dir : loaded =
  let session = sid in
  let snap = load_snapshot ~sdir:(snap_dir dir) in
  let newest_gen_present =
    match List.rev (Atomic_io.generations ~dir:(snap_dir dir)) with
    | g :: _ -> g
    | [] -> -1
  in
  let segs = segments_of_dir dir in
  let last_seg = match List.rev segs with s :: _ -> s | [] -> -1 in
  (* Read every retained segment; only the final segment may be torn.  The
     final segment's raw payloads are kept separately so the replication
     checksum chain over the {e active} segment can be recomputed — a
     restarted follower must resume the chain exactly where its disk state
     left it. *)
  let last_records = ref [] in
  let records =
    List.concat_map
      (fun k ->
        let recs, tail = Wal.read ~path:(segment_path dir k) in
        (match tail with
        | Wal.Clean -> ()
        | Wal.Torn _ when k = last_seg -> ()
        | Wal.Torn { valid_bytes } ->
            recovery_failed ~session "log segment %s truncated mid-history (%d valid bytes)"
              (segment_name k) valid_bytes
        | Wal.Corrupt { offset; reason } ->
            recovery_failed ~session "corrupt log segment %s at byte %d: %s" (segment_name k)
              offset reason);
        if k = last_seg then last_records := recs;
        recs)
      segs
  in
  let ops =
    List.map
      (fun payload ->
        match decode_op payload with
        | op -> op
        | exception Decode msg -> recovery_failed ~session "undecodable log record: %s" msg)
      records
  in
  (* Base state: the snapshot if any, else the open record heading segment 0. *)
  let expect_hash, hash, spec, source, base_lsn, base_facts =
    match snap with
    | Some s -> (s.sn_expect, s.sn_hash, s.sn_spec, s.sn_source, s.sn_lsn, s.sn_facts)
    | None -> (
        match ops with
        | Op_open { expect_hash; hash; spec; source } :: _ ->
            (expect_hash, hash, spec, source, 0, [])
        | [] -> raise Never_opened
        | _ :: _ -> recovery_failed ~session "no valid snapshot and no open record")
  in
  if not (String.equal spec (spec_name_of mgr)) then
    recovery_failed ~session "session was opened under provenance %s, service runs %s" spec
      (spec_name_of mgr);
  let actual = Session.source_hash source in
  if not (String.equal actual hash) then
    recovery_failed ~session "program hash mismatch: recorded %s, recovered source hashes to %s"
      hash actual;
  (match expect_hash with
  | Some h when not (String.equal h actual) ->
      recovery_failed ~session
        "program hash mismatch: pinned expect_hash %s, source hashes to %s" h actual
  | _ -> ());
  let incr =
    try Incr.open_session ~config:mgr.cfg.interp ~spec:mgr.cfg.spec source
    with Session.Error e ->
      recovery_failed ~session "program no longer compiles: %s" (Session.error_string e)
  in
  (* Replay: snapshot facts first (re-creating the canonical assertion
     order), then every logged op past the snapshot, in lsn order.  The lsn
     filter is what makes replay idempotent — a crash after the snapshot
     became durable but before its segments were pruned leaves records <=
     sn_lsn on disk, and they must not double-apply. *)
  let replayed = ref 0 in
  let max_lsn = ref base_lsn in
  let was_closed = ref false in
  (try
     List.iter
       (fun (pred, facts) ->
         List.iter
           (fun ((i : Provenance.Input.t), tup) ->
             Incr.assert_fact incr ~pred ?prob:i.Provenance.Input.prob
               ?me_group:i.Provenance.Input.me_group tup)
           facts)
       base_facts;
     List.iter
       (fun op ->
         let lsn = op_lsn op in
         if lsn > base_lsn then begin
           max_lsn := max !max_lsn lsn;
           match op with
           | Op_open _ -> ()
           | Op_assert { pred; input = i; tuple = tup; _ } ->
               replayed := !replayed + 1;
               Incr.assert_fact incr ~pred ?prob:i.Provenance.Input.prob
                 ?me_group:i.Provenance.Input.me_group tup
           | Op_retract { pred; tuple = tup; _ } ->
               replayed := !replayed + 1;
               Incr.retract_fact incr ~pred tup
           | Op_close _ -> was_closed := true
         end)
       ops
   with Session.Error e ->
     recovery_failed ~session "unreplayable op at lsn %d: %s" !max_lsn
       (Session.error_string e));
  (* Appends must land in a segment newer than any snapshot generation
     present on disk — even one skipped as corrupt — so every fallback
     path still reads them. *)
  let active_seg = max 0 (max last_seg (newest_gen_present + 1)) in
  let seg_chain, seg_records =
    if active_seg = last_seg then
      List.fold_left (fun (c, n) p -> (chain_add c p, n + 1)) (0L, 0) !last_records
    else (0L, 0)
  in
  {
    l_incr = incr;
    l_source = source;
    l_hash = hash;
    l_expect = expect_hash;
    l_next_lsn = !max_lsn + 1;
    l_active_seg = active_seg;
    l_seg_chain = seg_chain;
    l_seg_records = seg_records;
    l_replayed = !replayed;
    l_closed = !was_closed;
  }

(* ---- internals (callers hold the mutex) ------------------------------------------- *)

let find_entry mgr sid =
  match Hashtbl.find_opt mgr.entries sid with
  | Some e -> e
  | None -> invalid_input "unknown session %s" sid

let wal_of mgr entry (l : live) : Wal.t =
  match l.wal with
  | Some w -> w
  | None ->
      let dir = Option.get entry.dir in
      let w =
        io_guard (fun () ->
            Atomic_io.mkdir_p dir;
            Wal.open_append ~sync:mgr.cfg.wal_sync ?group:mgr.wal_group
              ~path:(segment_path dir entry.active_seg) ())
      in
      l.wal <- Some w;
      w

let emit mgr ev = match mgr.cfg.repl with Some s -> s.rs_emit ev | None -> ()

(* Append raw record bytes to the session's active segment and fold them
   into the segment chain.  Returns the group-commit ticket the caller must
   settle (outside the lock) before acknowledging, when one exists. *)
let append_payload mgr entry (l : live) (payload : string) : int option =
  let w = wal_of mgr entry l in
  let ticket = io_guard (fun () -> Wal.append_ticket w payload) in
  (match ticket with Some tk -> mgr.max_ticket <- max mgr.max_ticket tk | None -> ());
  entry.seg_chain <- chain_add entry.seg_chain payload;
  entry.seg_records <- entry.seg_records + 1;
  mgr.dstats.wal_appends <- mgr.dstats.wal_appends + 1;
  mgr.dstats.wal_bytes <- mgr.dstats.wal_bytes + String.length payload + Wal.record_header_len;
  ticket

let append_op mgr entry (l : live) (op : op) : int option =
  match entry.dir with
  | None -> None
  | Some _ ->
      let payload = encode_op op in
      let ticket = append_payload mgr entry l payload in
      emit mgr
        (Ev_op
           {
             sid = entry.sid;
             seg = entry.active_seg;
             lsn = op_lsn op;
             chain = entry.seg_chain;
             payload;
           });
      ticket

(* Settle an op's durability and replication level, called OUTSIDE the
   manager lock after the locked section committed locally: wait for the
   group fsync covering the op's ticket, then run the replication barrier
   (which may raise Fenced / Ack_timeout to veto the acknowledgement). *)
let commit_wait mgr (ticket : int option) : unit =
  (match (ticket, mgr.wal_group) with
  | Some tk, Some g -> io_guard (fun () -> Wal.Group.wait g tk)
  | _ -> ());
  match mgr.cfg.repl with Some s -> s.rs_barrier () | None -> ()

(** Wait until every WAL record appended so far is on stable storage — the
    follower's batch-apply path appends many records asynchronously and
    settles them with one flush before acknowledging. *)
let flush mgr : unit =
  match mgr.wal_group with
  | None -> ()
  | Some g ->
      let tk = locked mgr (fun () -> mgr.max_ticket) in
      if tk >= 0 then io_guard (fun () -> Wal.Group.wait g tk)

(* Snapshot the session's current overlay, rotate the WAL to a fresh
   segment, and prune segments no retained snapshot generation needs.  The
   snapshot is durable (atomic rename + dir fsync) before any segment is
   deleted, so a crash anywhere in here leaves a recoverable combination on
   disk. *)
let compact_locked mgr entry =
  match (entry.dir, entry.e_state) with
  | Some dir, Live l ->
      let s =
        {
          sn_spec = spec_name_of mgr;
          sn_hash = entry.hash;
          sn_expect = entry.expect_hash;
          sn_source = entry.source;
          sn_lsn = entry.next_lsn - 1;
          sn_facts = Incr.current_facts l.incr;
        }
      in
      let encoded = encode_snapshot s in
      let gen =
        io_guard (fun () ->
            Atomic_io.save ~dir:(snap_dir dir) ~keep:mgr.cfg.keep_snapshots encoded)
      in
      mgr.dstats.snapshots <- mgr.dstats.snapshots + 1;
      (* Seal the outgoing segment for the followers — chain and record
         count let them verify their replayed copy byte-for-byte — then
         ship the snapshot that supersedes it. *)
      emit mgr
        (Ev_seal
           {
             sid = entry.sid;
             seg = entry.active_seg;
             last_lsn = entry.next_lsn - 1;
             chain = entry.seg_chain;
             records = entry.seg_records;
           });
      (match l.wal with
      | Some w ->
          Wal.close w;
          l.wal <- None
      | None -> ());
      entry.active_seg <- max (entry.active_seg + 1) (gen + 1);
      entry.seg_chain <- 0L;
      entry.seg_records <- 0;
      entry.ops_since_snap <- 0;
      emit mgr (Ev_snapshot { sid = entry.sid; gen; lsn = s.sn_lsn; payload = encoded });
      (* The oldest retained generation has every segment at or below its
         own number folded in — and so does every newer one. *)
      (match Atomic_io.generations ~dir:(snap_dir dir) with
      | [] -> ()
      | g_min :: _ ->
          List.iter
            (fun k ->
              if k <= g_min then
                try Sys.remove (segment_path dir k) with Sys_error _ -> ())
            (segments_of_dir dir))
  | _ -> ()

(* Spill a cold session: make the disk state current (a fresh snapshot if
   any op is unsnapshotted), release the writer, drop the in-memory
   engine. *)
let spill_locked mgr entry =
  match entry.e_state with
  | Live l when entry.pins = 0 && entry.dir <> None ->
      if entry.ops_since_snap > 0 then compact_locked mgr entry;
      (match l.wal with
      | Some w ->
          Wal.close w;
          l.wal <- None
      | None -> ());
      entry.last_stats <- Incr.stats l.incr;
      entry.e_state <- Spilled;
      mgr.dstats.evictions <- mgr.dstats.evictions + 1
  | _ -> ()

let enforce_caps_locked mgr =
  match mgr.cfg.state_dir with
  | None -> ()
  | Some _ ->
      let now = mgr.cfg.now () in
      (match mgr.cfg.idle_ttl with
      | Some ttl ->
          Hashtbl.iter
            (fun _ e ->
              match e.e_state with
              | Live _ when e.pins = 0 && now -. e.last_used > ttl -> spill_locked mgr e
              | _ -> ())
            mgr.entries
      | None -> ());
      (match mgr.cfg.max_live with
      | None -> ()
      | Some cap ->
          let live =
            Hashtbl.fold
              (fun _ e acc -> match e.e_state with Live _ -> e :: acc | _ -> acc)
              mgr.entries []
          in
          let excess = List.length live - cap in
          if excess > 0 then
            live
            |> List.filter (fun e -> e.pins = 0)
            |> List.sort (fun a b -> compare a.last_used b.last_used)
            |> List.filteri (fun i _ -> i < excess)
            |> List.iter (spill_locked mgr))

let rehydrate_locked mgr entry : live =
  let dir = Option.get entry.dir in
  match load_session mgr ~sid:entry.sid ~dir with
  | loaded ->
      let l = { incr = loaded.l_incr; wal = None } in
      entry.e_state <- Live l;
      entry.next_lsn <- loaded.l_next_lsn;
      entry.active_seg <- loaded.l_active_seg;
      entry.seg_chain <- loaded.l_seg_chain;
      entry.seg_records <- loaded.l_seg_records;
      entry.ops_since_snap <- loaded.l_replayed;
      mgr.dstats.rehydrations <- mgr.dstats.rehydrations + 1;
      mgr.dstats.wal_replayed <- mgr.dstats.wal_replayed + loaded.l_replayed;
      enforce_caps_locked mgr;
      l
  | exception Never_opened ->
      (* a spilled session's state vanished from under us: quarantine *)
      let e =
        Exec_error.Recovery_failed
          { session = entry.sid; reason = "no valid snapshot and no open record" }
      in
      entry.e_state <- Failed e;
      mgr.dstats.recovery_failures <- mgr.dstats.recovery_failures + 1;
      raise (Session.Error e)
  | exception Session.Error e ->
      let e =
        match e with
        | Exec_error.Recovery_failed _ -> e
        | other ->
            Exec_error.Recovery_failed
              { session = entry.sid; reason = Session.error_string other }
      in
      entry.e_state <- Failed e;
      mgr.dstats.recovery_failures <- mgr.dstats.recovery_failures + 1;
      raise (Session.Error e)

(* Hydrated handle for a touch; refreshes the LRU clock. *)
let touch_live_locked mgr entry : live =
  entry.last_used <- mgr.cfg.now ();
  match entry.e_state with
  | Live l -> l
  | Spilled -> rehydrate_locked mgr entry
  | Failed e -> raise (Session.Error e)
  | Closed -> invalid_input "session is closed"

(* ---- standby role ----------------------------------------------------------------- *)

let require_primary mgr =
  if mgr.role = `Standby then
    invalid_input
      "this node is a replication standby: writes are refused until it is promoted"

let is_standby mgr = locked mgr (fun () -> mgr.role = `Standby)

(** Flip the registry's replication role.  [set_standby mgr false] is the
    promotion step: client writes are accepted from then on. *)
let set_standby mgr standby =
  locked mgr (fun () -> mgr.role <- (if standby then `Standby else `Primary))

(* ---- ship-log rotation barriers ----------------------------------------------------- *)

(* Every ship-log segment opens with a barrier: a snapshot of every live
   session, so the segment is self-contained — a follower may start (or
   resume, or recover from arbitrary lag) from the newest segment alone,
   and older segments can be pruned. *)

let emit_disk_snapshot_locked mgr entry dir =
  match Atomic_io.load_latest ~dir:(snap_dir dir) with
  | None -> ()
  | Some (gen, payload) -> (
      match decode_snapshot payload with
      | s -> emit mgr (Ev_snapshot { sid = entry.sid; gen; lsn = s.sn_lsn; payload })
      | exception Decode _ -> ())

let ship_snapshot_locked mgr entry =
  match entry.dir with
  | None -> ()
  | Some dir -> (
      match entry.e_state with
      | Failed _ | Closed -> ()
      | Live _ ->
          (* compacting emits the seal + a current snapshot; a session with
             nothing unsnapshotted just re-ships its newest disk snapshot *)
          if entry.ops_since_snap > 0 || Atomic_io.generations ~dir:(snap_dir dir) = []
          then compact_locked mgr entry
          else emit_disk_snapshot_locked mgr entry dir
      | Spilled ->
          (* spilling made the disk state current *)
          emit_disk_snapshot_locked mgr entry dir)

let rotate_ship_locked mgr (s : repl_sink) =
  s.rs_rotate_begin ();
  Hashtbl.iter (fun _ e -> ship_snapshot_locked mgr e) mgr.entries;
  s.rs_rotate_end ()

let maybe_rotate_ship_locked mgr =
  match mgr.cfg.repl with
  | Some s when s.rs_rotation_due () -> rotate_ship_locked mgr s
  | _ -> ()

(** Force a ship-log rotation barrier now: open a fresh ship segment headed
    by snapshots of every live session.  A (re)starting primary calls this
    once so followers can sync from its recovered state. *)
let ship_barrier mgr =
  locked mgr (fun () ->
      match mgr.cfg.repl with Some s -> rotate_ship_locked mgr s | None -> ())

(* ---- construction and recovery ------------------------------------------------------ *)

let create (cfg : config) : t =
  let mgr =
    {
      cfg;
      mutex = Mutex.create ();
      unpinned = Condition.create ();
      entries = Hashtbl.create 16;
      dstats =
        {
          wal_appends = 0;
          wal_bytes = 0;
          wal_replayed = 0;
          snapshots = 0;
          evictions = 0;
          rehydrations = 0;
          recovered = 0;
          recovery_failures = 0;
          remote_applied = 0;
          remote_installs = 0;
          divergences = 0;
          scrubs = 0;
          scrub_errors = 0;
        };
      wal_group =
        (if cfg.group_commit && cfg.wal_sync then
           Some (Wal.Group.create ~window:cfg.group_window ())
         else None);
      role = (if cfg.standby then `Standby else `Primary);
      max_ticket = -1;
    }
  in
  (match cfg.state_dir with
  | None -> ()
  | Some state_dir ->
      let root = sessions_root state_dir in
      io_guard (fun () -> Atomic_io.mkdir_p root);
      let names = match Sys.readdir root with exception Sys_error _ -> [||] | a -> a in
      Array.sort compare names;
      Array.iter
        (fun name ->
          let plen = String.length dir_prefix in
          if String.length name > plen && String.equal (String.sub name 0 plen) dir_prefix
          then begin
            let sid = decode_sid (String.sub name plen (String.length name - plen)) in
            let dir = Filename.concat root name in
            match load_session mgr ~sid ~dir with
            | loaded when loaded.l_closed ->
                (* closed cleanly; the crash beat the directory removal *)
                rm_rf dir
            | exception Never_opened ->
                (* the crash beat the open acknowledgement *)
                rm_rf dir
            | loaded ->
                Hashtbl.replace mgr.entries sid
                  {
                    sid;
                    dir = Some dir;
                    source = loaded.l_source;
                    hash = loaded.l_hash;
                    expect_hash = loaded.l_expect;
                    e_state = Live { incr = loaded.l_incr; wal = None };
                    next_lsn = loaded.l_next_lsn;
                    active_seg = loaded.l_active_seg;
                    seg_chain = loaded.l_seg_chain;
                    seg_records = loaded.l_seg_records;
                    ops_since_snap = loaded.l_replayed;
                    last_used = cfg.now ();
                    pins = 0;
                    last_stats = Incr.stats loaded.l_incr;
                  };
                mgr.dstats.recovered <- mgr.dstats.recovered + 1;
                mgr.dstats.wal_replayed <- mgr.dstats.wal_replayed + loaded.l_replayed
            | exception Session.Error e ->
                let e =
                  match e with
                  | Exec_error.Recovery_failed _ -> e
                  | other ->
                      Exec_error.Recovery_failed
                        { session = sid; reason = Session.error_string other }
                in
                Hashtbl.replace mgr.entries sid
                  {
                    sid;
                    dir = Some dir;
                    source = "";
                    hash = "";
                    expect_hash = None;
                    e_state = Failed e;
                    next_lsn = 0;
                    active_seg = 0;
                    seg_chain = 0L;
                    seg_records = 0;
                    ops_since_snap = 0;
                    last_used = cfg.now ();
                    pins = 0;
                    last_stats = Incr.empty_session_stats ();
                  };
                mgr.dstats.recovery_failures <- mgr.dstats.recovery_failures + 1
          end)
        names;
      Mutex.lock mgr.mutex;
      enforce_caps_locked mgr;
      Mutex.unlock mgr.mutex);
  mgr

(* ---- operations --------------------------------------------------------------------- *)

(** Open a session.  The program is compiled (shared plan cache) and
    validated {e before} anything is persisted, so a rejected open leaves no
    on-disk trace.  Returns the program hash and whether the session runs
    the exact delta engine. *)
let open_session mgr ~sid ?expect_hash source : string * bool =
  let result, ticket =
    locked mgr (fun () ->
        require_primary mgr;
        if Hashtbl.mem mgr.entries sid then invalid_input "session %s already open" sid;
        let incr =
          Incr.open_session ~config:mgr.cfg.interp ?expect_hash ~spec:mgr.cfg.spec source
        in
        let hash = Incr.program_hash incr in
        let dir = Option.map (fun sd -> session_dir sd sid) mgr.cfg.state_dir in
        let entry =
          {
            sid;
            dir;
            source;
            hash;
            expect_hash;
            e_state = Live { incr; wal = None };
            next_lsn = 1;
            active_seg = 0;
            seg_chain = 0L;
            seg_records = 0;
            ops_since_snap = 0;
            last_used = mgr.cfg.now ();
            pins = 0;
            last_stats = Incr.stats incr;
          }
        in
        let ticket =
          match (dir, entry.e_state) with
          | Some d, Live l ->
              rm_rf d;
              append_op mgr entry l
                (Op_open { expect_hash; hash; spec = spec_name_of mgr; source })
          | _ -> None
        in
        Hashtbl.replace mgr.entries sid entry;
        maybe_rotate_ship_locked mgr;
        enforce_caps_locked mgr;
        ((hash, Incr.is_exact incr), ticket))
  in
  commit_wait mgr ticket;
  result

(** Assert a fact.  Commit protocol: validate (raising exactly what
    {!Incr.assert_fact} would, without mutating), append the op to the WAL
    (fsync'd), then apply.  An acknowledged assert is therefore both valid
    and durable. *)
let assert_fact mgr ~sid ~pred ?prob ?me_group tup =
  let ticket =
    locked mgr (fun () ->
        require_primary mgr;
        let entry = find_entry mgr sid in
        let l = touch_live_locked mgr entry in
        let tup = Incr.check_assert l.incr ~pred tup in
        let ticket =
          append_op mgr entry l
            (Op_assert
               {
                 lsn = entry.next_lsn;
                 pred;
                 input = { Provenance.Input.prob; me_group };
                 tuple = tup;
               })
        in
        Incr.assert_fact l.incr ~pred ?prob ?me_group tup;
        entry.next_lsn <- entry.next_lsn + 1;
        entry.ops_since_snap <- entry.ops_since_snap + 1;
        if entry.dir <> None && entry.ops_since_snap >= mgr.cfg.snapshot_every then
          compact_locked mgr entry;
        maybe_rotate_ship_locked mgr;
        enforce_caps_locked mgr;
        ticket)
  in
  commit_wait mgr ticket

(** Retract a fact; same validate → log → apply protocol as {!assert_fact}. *)
let retract_fact mgr ~sid ~pred tup =
  let ticket =
    locked mgr (fun () ->
        require_primary mgr;
        let entry = find_entry mgr sid in
        let l = touch_live_locked mgr entry in
        let tup = Incr.check_retract l.incr ~pred tup in
        let ticket =
          append_op mgr entry l (Op_retract { lsn = entry.next_lsn; pred; tuple = tup })
        in
        Incr.retract_fact l.incr ~pred tup;
        entry.next_lsn <- entry.next_lsn + 1;
        entry.ops_since_snap <- entry.ops_since_snap + 1;
        if entry.dir <> None && entry.ops_since_snap >= mgr.cfg.snapshot_every then
          compact_locked mgr entry;
        maybe_rotate_ship_locked mgr;
        enforce_caps_locked mgr;
        ticket)
  in
  commit_wait mgr ticket

let unpin mgr entry =
  Mutex.lock mgr.mutex;
  entry.pins <- entry.pins - 1;
  entry.last_used <- mgr.cfg.now ();
  (match entry.e_state with Live l -> entry.last_stats <- Incr.stats l.incr | _ -> ());
  Condition.broadcast mgr.unpinned;
  Mutex.unlock mgr.mutex

(* Reads pin the entry: the manager mutex is released for the (possibly
   long) evaluation, and pinned entries are never spilled or torn down. *)
let with_pinned mgr ~sid f =
  let entry, l =
    locked mgr (fun () ->
        let entry = find_entry mgr sid in
        let l = touch_live_locked mgr entry in
        entry.pins <- entry.pins + 1;
        (entry, l))
  in
  Fun.protect ~finally:(fun () -> unpin mgr entry) (fun () -> f l.incr)

(** Answer a query.  Queries never touch the log — they change no durable
    state (the pending-changes fold happens in memory and is reconstructed
    by replay). *)
let query ?outputs ?budget mgr ~sid () : Session.result =
  with_pinned mgr ~sid (fun incr -> Incr.query ?outputs ?budget incr)

(** The differential oracle for tests and benchmarks. *)
let run_cold ?outputs mgr ~sid () : Session.result =
  with_pinned mgr ~sid (fun incr -> Incr.run_cold ?outputs incr)

(** Close a session: drain in-flight queries (pins), log the close, delete
    the session's on-disk state, and retire the entry.  The sid stays
    registered as closed — re-opening it in the same process is
    "already open", matching the in-memory registry.  Closing a
    recovery-failed session discards its quarantined state.  Returns the
    session's final statistics. *)
let close mgr ~sid : Incr.session_stats =
  let result =
    locked mgr (fun () ->
        require_primary mgr;
        let entry = find_entry mgr sid in
        match entry.e_state with
        | Closed -> invalid_input "session is closed"
        | Failed _ ->
            Option.iter rm_rf entry.dir;
            entry.e_state <- Closed;
            entry.last_stats
        | Spilled | Live _ ->
            while entry.pins > 0 do
              Condition.wait mgr.unpinned mgr.mutex
            done;
            (match entry.e_state with
            | Live l ->
                entry.last_stats <- Incr.stats l.incr;
                ignore (append_op mgr entry l (Op_close { lsn = entry.next_lsn }));
                entry.next_lsn <- entry.next_lsn + 1;
                (match l.wal with
                | Some w ->
                    Wal.close w;
                    l.wal <- None
                | None -> ());
                Incr.close l.incr
            | Spilled -> (
                (* no need to rehydrate the engine just to retire it, but the
                   close must still reach the log before the directory goes:
                   a crash between the two replays as a clean close *)
                match entry.dir with
                | None -> ()
                | Some dir ->
                    let payload = encode_op (Op_close { lsn = entry.next_lsn }) in
                    io_guard (fun () ->
                        let w =
                          Wal.open_append ~sync:mgr.cfg.wal_sync
                            ~path:(segment_path dir entry.active_seg) ()
                        in
                        Wal.append w payload;
                        Wal.close w);
                    entry.seg_chain <- chain_add entry.seg_chain payload;
                    entry.seg_records <- entry.seg_records + 1;
                    emit mgr
                      (Ev_op
                         {
                           sid = entry.sid;
                           seg = entry.active_seg;
                           lsn = entry.next_lsn;
                           chain = entry.seg_chain;
                           payload;
                         });
                    entry.next_lsn <- entry.next_lsn + 1)
            | _ -> ());
            Option.iter rm_rf entry.dir;
            entry.e_state <- Closed;
            entry.last_stats)
  in
  (* the close record is fsync'd by Wal.close / the direct writer above;
     only the replication barrier remains *)
  (match mgr.cfg.repl with Some s -> s.rs_barrier () | None -> ());
  result

(** Latest statistics for a session (live handle if hydrated, last observed
    otherwise). *)
let session_stats mgr ~sid : Incr.session_stats =
  locked mgr (fun () ->
      let entry = find_entry mgr sid in
      match entry.e_state with Live l -> Incr.stats l.incr | _ -> entry.last_stats)

(** Whether [sid] names a registered session, in any state. *)
let exists mgr ~sid = locked mgr (fun () -> Hashtbl.mem mgr.entries sid)

type counts = { live : int; spilled : int; failed : int; closed : int }

let session_counts mgr : counts =
  locked mgr (fun () ->
      Hashtbl.fold
        (fun _ e c ->
          match e.e_state with
          | Live _ -> { c with live = c.live + 1 }
          | Spilled -> { c with spilled = c.spilled + 1 }
          | Failed _ -> { c with failed = c.failed + 1 }
          | Closed -> { c with closed = c.closed + 1 })
        mgr.entries
        { live = 0; spilled = 0; failed = 0; closed = 0 })

(** Run the idle-TTL / LRU-cap sweep now (it also runs after every
    state-changing op). *)
let sweep mgr = locked mgr (fun () -> enforce_caps_locked mgr)

(** Force a compaction snapshot of one session (test hook). *)
let compact mgr ~sid =
  locked mgr (fun () ->
      let entry = find_entry mgr sid in
      let _ = touch_live_locked mgr entry in
      compact_locked mgr entry)

(** Force-spill one session (test hook; no-op if pinned or non-durable). *)
let evict mgr ~sid = locked mgr (fun () -> spill_locked mgr (find_entry mgr sid))

let is_spilled mgr ~sid =
  locked mgr (fun () ->
      match (find_entry mgr sid).e_state with Spilled -> true | _ -> false)

(** Release every WAL writer (fsync'd).  Does not log closes: sessions stay
    live on disk for the next {!create}. *)
let shutdown mgr =
  locked mgr (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e.e_state with
          | Live ({ wal = Some w; _ } as l) ->
              Wal.close w;
              l.wal <- None
          | _ -> ())
        mgr.entries)

(* ---- remote apply (the follower's commit path) ---------------------------------------- *)

(* A standby replays the primary's frames through these entry points.  The
   invariants they defend: an applied op is byte-identical to the
   primary's WAL record, lands at exactly the expected (segment, lsn), and
   reproduces the primary's checksum chain.  Anything else quarantines the
   session as [Replication_diverged] — answering queries from a silently
   forked replica is the one failure mode this layer exists to prevent.
   Snapshot transfer ([install_snapshot]) is also the healing path: it
   rebuilds diverged or lagging sessions from the primary's state. *)

let diverged_no_entry ~session ~segment fmt =
  Fmt.kstr
    (fun reason ->
      raise (Session.Error (Exec_error.Replication_diverged { session; segment; reason })))
    fmt

(* Quarantine [entry] and raise.  The engine is left in place (a pinned
   standby query may still be reading it); only the WAL writer is
   released. *)
let diverged mgr entry ~segment fmt =
  Fmt.kstr
    (fun reason ->
      let err =
        Exec_error.Replication_diverged { session = entry.sid; segment; reason }
      in
      (match entry.e_state with
      | Live ({ wal = Some w; _ } as l) ->
          Wal.close w;
          l.wal <- None
      | _ -> ());
      entry.e_state <- Failed err;
      mgr.dstats.divergences <- mgr.dstats.divergences + 1;
      raise (Session.Error err))
    fmt

type watermark = {
  wm_next_lsn : int;
  wm_seg : int;  (** active segment *)
  wm_failed : bool;  (** quarantined — only a snapshot transfer can heal it *)
  wm_closed : bool;
}

(** Where a session's replayed state stands — what the follower compares
    each incoming frame against to decide skip / apply / resync. *)
let remote_watermark mgr ~sid : watermark option =
  locked mgr (fun () ->
      match Hashtbl.find_opt mgr.entries sid with
      | None -> None
      | Some e ->
          Some
            {
              wm_next_lsn = e.next_lsn;
              wm_seg = e.active_seg;
              wm_failed = (match e.e_state with Failed _ -> true | _ -> false);
              wm_closed = (match e.e_state with Closed -> true | _ -> false);
            })

(** Apply one replicated op at exactly ([seg], [lsn]), verifying the
    checksum chain after it.  The record is appended to the local WAL
    asynchronously (group ticket); call {!flush} before acknowledging a
    batch. *)
let apply_remote mgr ~sid ~seg ~lsn ~chain ~payload : unit =
  locked mgr (fun () ->
      if mgr.cfg.state_dir = None then
        invalid_input "remote apply requires a state dir";
      let op =
        try decode_op payload
        with Decode msg ->
          diverged_no_entry ~session:sid ~segment:seg "undecodable replicated record: %s"
            msg
      in
      match op with
      | Op_open { expect_hash; hash; spec; source } ->
          if Hashtbl.mem mgr.entries sid then
            invalid_input "replicated open for existing session %s" sid;
          if not (String.equal spec (spec_name_of mgr)) then
            diverged_no_entry ~session:sid ~segment:seg
              "session opened under provenance %s, this node runs %s" spec
              (spec_name_of mgr);
          let incr =
            try
              Incr.open_session ~config:mgr.cfg.interp ?expect_hash ~spec:mgr.cfg.spec
                source
            with Session.Error e ->
              diverged_no_entry ~session:sid ~segment:seg
                "replicated program does not compile: %s" (Session.error_string e)
          in
          if not (String.equal (Incr.program_hash incr) hash) then
            diverged_no_entry ~session:sid ~segment:seg
              "replicated program hashes to %s, frame says %s" (Incr.program_hash incr)
              hash;
          let dir = Option.map (fun sd -> session_dir sd sid) mgr.cfg.state_dir in
          let l = { incr; wal = None } in
          let entry =
            {
              sid;
              dir;
              source;
              hash;
              expect_hash;
              e_state = Live l;
              next_lsn = 1;
              active_seg = seg;
              seg_chain = 0L;
              seg_records = 0;
              ops_since_snap = 0;
              last_used = mgr.cfg.now ();
              pins = 0;
              last_stats = Incr.stats incr;
            }
          in
          Option.iter rm_rf dir;
          ignore (append_payload mgr entry l payload);
          Hashtbl.replace mgr.entries sid entry;
          if not (Int64.equal entry.seg_chain chain) then
            diverged mgr entry ~segment:seg "checksum chain mismatch on open";
          mgr.dstats.remote_applied <- mgr.dstats.remote_applied + 1
      | (Op_assert _ | Op_retract _ | Op_close _) as op -> (
          let entry =
            match Hashtbl.find_opt mgr.entries sid with
            | Some e -> e
            | None ->
                diverged_no_entry ~session:sid ~segment:seg
                  "replicated op for unknown session"
          in
          (match entry.e_state with
          | Failed err -> raise (Session.Error err)
          | Closed -> invalid_input "replicated op for closed session %s" sid
          | Live _ | Spilled -> ());
          if lsn <> entry.next_lsn then
            diverged mgr entry ~segment:seg "op at lsn %d arrived at watermark %d" lsn
              entry.next_lsn;
          if seg <> entry.active_seg then
            diverged mgr entry ~segment:seg "op for segment %d but active segment is %d"
              seg entry.active_seg;
          let l = touch_live_locked mgr entry in
          let check_chain () =
            if not (Int64.equal entry.seg_chain chain) then
              diverged mgr entry ~segment:seg "checksum chain mismatch after lsn %d" lsn
          in
          match op with
          | Op_assert { pred; input; tuple = tup; _ } ->
              let tup =
                try Incr.check_assert l.incr ~pred tup
                with Session.Error e ->
                  diverged mgr entry ~segment:seg
                    "replicated assert no longer validates: %s" (Session.error_string e)
              in
              ignore (append_payload mgr entry l payload);
              check_chain ();
              Incr.assert_fact l.incr ~pred ?prob:input.Provenance.Input.prob
                ?me_group:input.Provenance.Input.me_group tup;
              entry.next_lsn <- entry.next_lsn + 1;
              entry.ops_since_snap <- entry.ops_since_snap + 1;
              mgr.dstats.remote_applied <- mgr.dstats.remote_applied + 1
          | Op_retract { pred; tuple = tup; _ } ->
              let tup =
                try Incr.check_retract l.incr ~pred tup
                with Session.Error e ->
                  diverged mgr entry ~segment:seg
                    "replicated retract no longer validates: %s" (Session.error_string e)
              in
              ignore (append_payload mgr entry l payload);
              check_chain ();
              Incr.retract_fact l.incr ~pred tup;
              entry.next_lsn <- entry.next_lsn + 1;
              entry.ops_since_snap <- entry.ops_since_snap + 1;
              mgr.dstats.remote_applied <- mgr.dstats.remote_applied + 1
          | Op_close _ ->
              (* drain standby queries exactly like a local close *)
              while entry.pins > 0 do
                Condition.wait mgr.unpinned mgr.mutex
              done;
              ignore (append_payload mgr entry l payload);
              check_chain ();
              entry.next_lsn <- entry.next_lsn + 1;
              (match entry.e_state with
              | Live l2 ->
                  entry.last_stats <- Incr.stats l2.incr;
                  (match l2.wal with
                  | Some w ->
                      Wal.close w;
                      l2.wal <- None
                  | None -> ());
                  Incr.close l2.incr
              | _ -> ());
              Option.iter rm_rf entry.dir;
              entry.e_state <- Closed;
              mgr.dstats.remote_applied <- mgr.dstats.remote_applied + 1
          | Op_open _ -> assert false))

(** Verify a sealed segment against the local replay: same last lsn, same
    record count, same checksum chain.  Rotation itself happens when the
    snapshot that follows the seal is adopted. *)
let seal_remote mgr ~sid ~seg ~last_lsn ~chain ~records : unit =
  locked mgr (fun () ->
      match Hashtbl.find_opt mgr.entries sid with
      | None -> ()  (* unknown here: the snapshot that follows will install it *)
      | Some entry -> (
          match entry.e_state with
          | Failed _ | Closed -> ()
          | Live _ | Spilled ->
              if seg < entry.active_seg then () (* already sealed; replayed frame *)
              else if seg > entry.active_seg then
                diverged mgr entry ~segment:seg "seal for future segment (active is %d)"
                  entry.active_seg
              else begin
                if entry.next_lsn - 1 <> last_lsn then
                  diverged mgr entry ~segment:seg
                    "segment sealed at lsn %d but replay reached %d" last_lsn
                    (entry.next_lsn - 1);
                if entry.seg_records <> records then
                  diverged mgr entry ~segment:seg
                    "segment sealed with %d records but replay holds %d" records
                    entry.seg_records;
                if not (Int64.equal entry.seg_chain chain) then
                  diverged mgr entry ~segment:seg
                    "checksum chain mismatch at seal (%d records)" records
              end))

type install =
  | Installed  (** full snapshot transfer: session rebuilt from the payload *)
  | Adopted  (** state was already current; snapshot adopted as the local
                 compaction point *)
  | Skipped  (** local state is ahead of (or closed relative to) the snapshot *)

(** Install a replicated snapshot generation.  Three regimes: a session
    whose replay is {e at} the snapshot's lsn adopts it (write the file at
    the primary's generation number, rotate, prune) so primary and
    follower compact in lockstep; a session that is behind, unknown, or
    quarantined is rebuilt from the payload through the normal recovery
    path; a session that is ahead skips it (a replayed barrier frame). *)
let install_snapshot mgr ~sid ~gen ~payload : install =
  locked mgr (fun () ->
      let state_dir =
        match mgr.cfg.state_dir with
        | Some sd -> sd
        | None -> invalid_input "snapshot install requires a state dir"
      in
      let s =
        try decode_snapshot payload
        with Decode msg ->
          diverged_no_entry ~session:sid ~segment:gen "undecodable snapshot: %s" msg
      in
      let existing = Hashtbl.find_opt mgr.entries sid in
      let healthy e = match e.e_state with Live _ | Spilled -> true | _ -> false in
      match existing with
      | Some e when (match e.e_state with Closed -> true | _ -> false) -> Skipped
      | Some e when healthy e && e.next_lsn - 1 > s.sn_lsn -> Skipped
      | Some e when healthy e && e.next_lsn - 1 = s.sn_lsn ->
          let dir = Option.get e.dir in
          io_guard (fun () ->
              Atomic_io.save_at ~dir:(snap_dir dir) ~gen ~keep:mgr.cfg.keep_snapshots
                payload);
          mgr.dstats.snapshots <- mgr.dstats.snapshots + 1;
          if gen + 1 > e.active_seg then begin
            (match e.e_state with
            | Live ({ wal = Some w; _ } as l) ->
                Wal.close w;
                l.wal <- None
            | _ -> ());
            e.active_seg <- gen + 1;
            e.seg_chain <- 0L;
            e.seg_records <- 0
          end;
          e.ops_since_snap <- 0;
          (match Atomic_io.generations ~dir:(snap_dir dir) with
          | [] -> ()
          | g_min :: _ ->
              List.iter
                (fun k ->
                  if k <= g_min then
                    try Sys.remove (segment_path dir k) with Sys_error _ -> ())
                (segments_of_dir dir));
          Adopted
      | _ -> (
          (* unknown, quarantined, or behind: full transfer *)
          (match existing with
          | Some { e_state = Live ({ wal = Some w; _ } as l); _ } ->
              Wal.close w;
              l.wal <- None
          | _ -> ());
          let dir = session_dir state_dir sid in
          io_guard (fun () ->
              rm_rf dir;
              Atomic_io.save_at ~dir:(snap_dir dir) ~gen ~keep:mgr.cfg.keep_snapshots
                payload);
          match load_session mgr ~sid ~dir with
          | loaded ->
              Hashtbl.replace mgr.entries sid
                {
                  sid;
                  dir = Some dir;
                  source = loaded.l_source;
                  hash = loaded.l_hash;
                  expect_hash = loaded.l_expect;
                  e_state = Live { incr = loaded.l_incr; wal = None };
                  next_lsn = loaded.l_next_lsn;
                  active_seg = loaded.l_active_seg;
                  seg_chain = loaded.l_seg_chain;
                  seg_records = loaded.l_seg_records;
                  ops_since_snap = 0;
                  last_used = mgr.cfg.now ();
                  pins = 0;
                  last_stats = Incr.stats loaded.l_incr;
                };
              mgr.dstats.remote_installs <- mgr.dstats.remote_installs + 1;
              Installed
          | exception Never_opened ->
              diverged_no_entry ~session:sid ~segment:gen
                "installed snapshot did not load"
          | exception Session.Error e ->
              let err =
                match e with
                | Exec_error.Recovery_failed _ -> e
                | other ->
                    Exec_error.Recovery_failed
                      { session = sid; reason = Session.error_string other }
              in
              (match existing with
              | Some entry -> entry.e_state <- Failed err
              | None -> ());
              mgr.dstats.recovery_failures <- mgr.dstats.recovery_failures + 1;
              raise (Session.Error err)))

(* ---- scrub ---------------------------------------------------------------------------- *)

type scrub_report = {
  sc_sid : string;
  sc_snapshots : int;  (** snapshot generations examined *)
  sc_segments : int;  (** WAL segments examined *)
  sc_errors : string list;  (** bit-rot findings, empty when clean *)
}

(** Re-verify the checksums of every retained snapshot generation and WAL
    segment of every registered session — the background defense against
    bit rot that would otherwise surface only at the next recovery.  Purely
    a read: nothing is repaired or quarantined (a damaged generation is
    exactly what the generation fallback at recovery is for), but the
    findings land in {!stats} ([scrubs], [scrub_errors]) and the per-session
    report. *)
let scrub mgr : scrub_report list =
  locked mgr (fun () ->
      let reports =
        Hashtbl.fold
          (fun _ e acc ->
            match (e.dir, e.e_state) with
            | None, _ | _, Closed -> acc
            | Some dir, _ ->
                let errors = ref [] in
                let sdir = snap_dir dir in
                let gens = Atomic_io.generations ~dir:sdir in
                List.iter
                  (fun g ->
                    match Atomic_io.read_file ~path:(Atomic_io.path_of ~dir:sdir g) with
                    | Error err ->
                        errors :=
                          Fmt.str "snapshot gen %d: %s" g
                            (Atomic_io.read_error_string err)
                          :: !errors
                    | Ok payload -> (
                        match decode_snapshot payload with
                        | _ -> ()
                        | exception Decode msg ->
                            errors := Fmt.str "snapshot gen %d: %s" g msg :: !errors))
                  gens;
                let segs = segments_of_dir dir in
                let last = match List.rev segs with s :: _ -> s | [] -> -1 in
                List.iter
                  (fun k ->
                    match snd (Wal.read ~path:(segment_path dir k)) with
                    | Wal.Clean -> ()
                    | Wal.Torn _ when k = last -> () (* crash leftover, truncated on reopen *)
                    | tail ->
                        errors :=
                          Fmt.str "segment %s: %s" (segment_name k) (Wal.tail_string tail)
                          :: !errors)
                  segs;
                {
                  sc_sid = e.sid;
                  sc_snapshots = List.length gens;
                  sc_segments = List.length segs;
                  sc_errors = List.rev !errors;
                }
                :: acc)
          mgr.entries []
      in
      let reports = List.sort (fun a b -> compare a.sc_sid b.sc_sid) reports in
      mgr.dstats.scrubs <- mgr.dstats.scrubs + 1;
      mgr.dstats.scrub_errors <-
        List.fold_left (fun n r -> n + List.length r.sc_errors) 0 reports;
      reports)

(** (sid, next lsn, active segment) of every non-closed session, sorted —
    the replication status line. *)
let session_watermarks mgr : (string * int * int) list =
  locked mgr (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          match e.e_state with
          | Closed -> acc
          | _ -> (e.sid, e.next_lsn, e.active_seg) :: acc)
        mgr.entries []
      |> List.sort compare)
