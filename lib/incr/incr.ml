(** Incremental view maintenance over compiled plans.

    A {!t} is a stateful session around one compiled program: tenants
    [assert_fact]/[retract_fact] into a private EDB overlay and [query]
    re-derives only what the pending changes can affect, keeping the
    materialized IDB (one database snapshot per stratum) alive across
    updates.  Compiled plans themselves are shared across sessions through
    {!Session.compile_cached}, keyed by program source hash — per-tenant
    state is exactly the overlay plus the materialization, never the plan.

    {b Contract.}  After any sequence of updates, [query] is bit-identical
    to a cold {!Session.run} on the equivalent final EDB ([run_cold] is
    that oracle).  Two maintenance strategies uphold it:

    - {e Exact delta continuation} for provenances whose ⊕ is idempotent
      with saturation-by-equality and whose input tags carry no per-instance
      variable ids (unit / boolean / minmaxprob, {!exact_incremental}).
      Additions and tag {e increases} extend the old fixed point: seed
      deltas are derived through {!Plan.delta_plans_from} variants of each
      rule body (one per changed-predicate leaf), then recursive strata
      continue their semi-naive loop via {!Interp.Make.continue_stratum}.
      Retractions and tag decreases use DRed-style delete-rederive at
      stratum granularity: the affected stratum re-evaluates from its
      (updated) inputs, and the head-level diff is re-classified so
      downstream strata can still take the additive fast path.  Strata
      whose inputs did not change at all reuse their previous relations
      outright.
    - {e Cold recompute} for everything else (counting, clamped-sum
      probabilities, proof-set and differentiable provenances, and any
      plan containing a sampler): these provenances allocate variable ids
      statefully or saturate non-observationally, so the only way to stay
      bit-identical is a fresh {!Session.run} per dirty query — still
      amortized by the shared plan cache and by caching the last clean
      result.

    All protocol misuses (retracting a never-asserted fact, operating on a
    closed session, opening against a mismatched program hash) raise
    {!Session.Error} carrying {!Exec_error.Invalid_input}. *)

open Scallop_core
module SMap = Map.Make (String)
module SSet = Set.Make (String)

let invalid_input fmt = Session.invalid_input fmt

(* ---- plan analysis ------------------------------------------------------- *)

(* Every database predicate read anywhere under [p]. *)
let rec preds_of acc (p : Plan.t) =
  match p.Plan.desc with
  | Plan.Empty | Plan.Singleton -> acc
  | Plan.Pred pr -> SSet.add pr acc
  | Plan.Select (_, a) | Plan.Project (_, a) | Plan.One_overwrite a | Plan.Zero_overwrite a
    ->
      preds_of acc a
  | Plan.Union (a, b) | Plan.Product (a, b) | Plan.Diff (a, b) | Plan.Intersect (a, b) ->
      preds_of (preds_of acc a) b
  | Plan.Join { left; right; _ } | Plan.Antijoin { left; right; _ } ->
      preds_of (preds_of acc left) right
  | Plan.Aggregate { group; body; _ } | Plan.Sample { group; body; _ } ->
      let acc = preds_of acc body in
      (match group with Plan.Domain d -> preds_of acc d | _ -> acc)
  | Plan.Foreign_join { left; _ } -> preds_of acc left

(* Predicates read in positions where additive growth does NOT grow the
   node's output monotonically under an idempotent ⊕: the right side of
   −/antijoin, aggregation inputs (counts and extrema move), sampler inputs
   (draws shift), and anything under a zero-overwrite.  A change to such a
   predicate forces the enclosing stratum to re-evaluate rather than
   continue its fixpoint.  This is exactly the complement of the positions
   {!Plan.delta_plans} substitutes delta leaves into. *)
let rec nonmono_preds acc (p : Plan.t) =
  match p.Plan.desc with
  | Plan.Empty | Plan.Singleton | Plan.Pred _ -> acc
  | Plan.Select (_, a) | Plan.Project (_, a) | Plan.One_overwrite a -> nonmono_preds acc a
  | Plan.Zero_overwrite a -> preds_of acc a
  | Plan.Union (a, b) | Plan.Product (a, b) | Plan.Intersect (a, b) ->
      nonmono_preds (nonmono_preds acc a) b
  | Plan.Diff (a, b) -> preds_of (nonmono_preds acc a) b
  | Plan.Join { left; right; _ } -> nonmono_preds (nonmono_preds acc left) right
  | Plan.Antijoin { left; right; _ } -> preds_of (nonmono_preds acc left) right
  | Plan.Aggregate { group; body; _ } | Plan.Sample { group; body; _ } ->
      let acc = preds_of acc body in
      (match group with Plan.Domain d -> preds_of acc d | _ -> acc)
  | Plan.Foreign_join { left; _ } -> nonmono_preds acc left

let rec has_sampler (p : Plan.t) =
  match p.Plan.desc with
  | Plan.Sample _ -> true
  | Plan.Empty | Plan.Singleton | Plan.Pred _ -> false
  | Plan.Select (_, a) | Plan.Project (_, a) | Plan.One_overwrite a | Plan.Zero_overwrite a
    ->
      has_sampler a
  | Plan.Union (a, b) | Plan.Product (a, b) | Plan.Diff (a, b) | Plan.Intersect (a, b) ->
      has_sampler a || has_sampler b
  | Plan.Join { left; right; _ } | Plan.Antijoin { left; right; _ } ->
      has_sampler left || has_sampler right
  | Plan.Aggregate { group; body; _ } ->
      has_sampler body || (match group with Plan.Domain d -> has_sampler d | _ -> false)
  | Plan.Foreign_join { left; _ } -> has_sampler left

let plan_has_sampler (plan : Plan.program) =
  List.exists
    (fun (s : Plan.stratum) -> List.exists (fun (r : Plan.rule) -> has_sampler r.Plan.body) s.Plan.rules)
    plan.Plan.strata

type stratum_meta = {
  sm_heads : string list;
  sm_reads : SSet.t;  (** predicates read by rule bodies, own heads excluded *)
  sm_nonmono : SSet.t;  (** the subset read in non-monotone positions *)
}

let stratum_metas (plan : Plan.program) : stratum_meta array =
  plan.Plan.strata
  |> List.map (fun (s : Plan.stratum) ->
         let reads, nonmono =
           List.fold_left
             (fun (r, n) (rule : Plan.rule) ->
               (preds_of r rule.Plan.body, nonmono_preds n rule.Plan.body))
             (SSet.empty, SSet.empty) s.Plan.rules
         in
         let own = SSet.of_list s.Plan.heads in
         {
           sm_heads = s.Plan.heads;
           sm_reads = SSet.diff reads own;
           sm_nonmono = SSet.diff nonmono own;
         })
  |> Array.of_list

(** Provenances whose ⊕ is idempotent with saturation-by-equality and whose
    {!Provenance.S.tag_of_input} is a pure function of the input (no
    variable-id allocation): for these, continuing a fixed point from the
    old materialization is bit-identical to a cold run. *)
let exact_incremental : Registry.spec -> bool = function
  | Registry.Unit | Registry.Boolean | Registry.Max_min_prob -> true
  | _ -> false

(* ---- session statistics --------------------------------------------------- *)

type session_stats = {
  mutable queries : int;  (** [query] calls answered *)
  mutable update_batches : int;  (** queries that had pending changes to fold in *)
  mutable strata_reused : int;  (** strata whose old relations were reused as-is *)
  mutable strata_continued : int;  (** strata advanced by delta continuation *)
  mutable strata_recomputed : int;  (** strata re-evaluated from their inputs *)
  mutable full_runs : int;  (** cold evaluations (initial + recompute fallback) *)
}

let empty_session_stats () =
  {
    queries = 0;
    update_batches = 0;
    strata_reused = 0;
    strata_continued = 0;
    strata_recomputed = 0;
    full_runs = 0;
  }

let pp_session_stats ppf (s : session_stats) =
  Fmt.pf ppf "queries=%d updates=%d reused=%d continued=%d recomputed=%d full=%d"
    s.queries s.update_batches s.strata_reused s.strata_continued s.strata_recomputed
    s.full_runs

(* ---- maintenance engines -------------------------------------------------- *)

(** The provenance-erased face of a maintenance engine.  [changes] is the
    deduplicated (pred, tuple) changelog since the last successful query;
    [overlay] reads the tuple's {e current} dynamic input (None = retracted);
    [facts] is the full current EDB in canonical (first-assertion) order for
    engines that re-run cold.  Raises {!Session.Error}; must not mutate
    committed state unless it returns. *)
type engine = {
  e_query :
    changes:(string * Tuple.t) list ->
    overlay:(string -> Tuple.t -> Provenance.Input.t option) ->
    facts:(string * (Provenance.Input.t * Tuple.t) list) list ->
    outputs:string list option ->
    budget:Budget.t option ->
    Session.result;
}

let effective_config (config : Interp.config) = function
  | None -> config
  | Some b -> { config with Interp.budget = b }

module Exact_engine (P : Provenance.S) = struct
  module I = Interp.Make (P)

  type state = {
    compiled : Session.compiled;
    config : Interp.config;
    meta : stratum_meta array;
    stats : session_stats;
    mutable next_pid : int;
        (** id source for generated delta-variant spines, threaded past
            [plan.node_count] so profiler/cache keys never collide *)
    static_db : I.db;
    mutable edb : I.db;  (** static ⊕ overlay as of the last committed query *)
    mutable snaps : I.db array;  (** database after each stratum; [||] = never run *)
  }

  let tag_of_input (i : Provenance.Input.t) = fst (P.tag_of_input i)

  let make (compiled : Session.compiled) config meta stats =
    let static_db =
      List.fold_left
        (fun db (pred, prob, me, tuple) ->
          I.db_add_fact db pred tuple
            (tag_of_input { Provenance.Input.prob; me_group = me }))
        I.empty_db compiled.Session.static_facts
    in
    {
      compiled;
      config;
      meta;
      stats;
      next_pid = compiled.Session.plan.Plan.node_count;
      static_db;
      edb = static_db;
      snaps = [||];
    }

  (* Exact-class saturation is equality, so ≐ both ways ⟺ same tag. *)
  let tag_equal a b = P.saturated ~old:a b && P.saturated ~old:b a

  (* The new tag of an EDB entry: static tag ⊕ overlay tag, merged in the
     same order [Session.run] folds facts (static first).  me-group shifting
     is irrelevant here — exact-class [tag_of_input] ignores me-groups. *)
  let entry_tag st overlay pred tuple : P.t option =
    let static = Tuple.Map.find_opt tuple (I.relation_of st.static_db pred) in
    let dyn = Option.map tag_of_input (overlay pred tuple) in
    match (static, dyn) with
    | None, None -> None
    | (Some _ as t), None | None, (Some _ as t) -> t
    | Some s, Some d -> Some (P.add s d)

  type change =
    | Additive of I.relation
        (** every changed tuple absorbs its old tag (new = old ⊕ new);
            carries the delta under merged tags, the
            {!Interp.Make.delta_of} convention *)
    | Reset  (** something was removed or weakened: re-evaluate readers *)

  let join_change a b =
    match (a, b) with
    | Additive x, Additive y ->
        Additive (Tuple.Map.union (fun _ _x y -> Some y) x y)
    | _ -> Reset

  (* Fold the pending changelog into the committed EDB.  Returns the new EDB
     and a per-predicate classification of the net change; predicates whose
     entries all settled back to their old tags are dropped. *)
  let apply_changes st ~changes ~overlay : I.db * change SMap.t =
    List.fold_left
      (fun (db, cmap) (pred, tuple) ->
        let old_rel = I.relation_of db pred in
        let old_tag = Tuple.Map.find_opt tuple old_rel in
        let new_tag = entry_tag st overlay pred tuple in
        match (old_tag, new_tag) with
        | None, None -> (db, cmap)
        | Some o, Some n when tag_equal o n -> (db, cmap)
        | _ ->
            let db =
              match new_tag with
              | None -> I.SMap.add pred (Tuple.Map.remove tuple old_rel) db
              | Some n -> I.SMap.add pred (Tuple.Map.add tuple n old_rel) db
            in
            let c =
              match (old_tag, new_tag) with
              | None, Some n -> Additive (Tuple.Map.singleton tuple n)
              | Some o, Some n when P.saturated ~old:n (P.add o n) ->
                  (* new absorbs old: a pure tag increase *)
                  Additive (Tuple.Map.singleton tuple n)
              | _ -> Reset
            in
            let cmap =
              SMap.update pred
                (function None -> Some c | Some c0 -> Some (join_change c0 c))
                cmap
            in
            (db, cmap))
      (st.edb, SMap.empty) changes

  (* Copy stratum [i]'s head relations from an already-evaluated database. *)
  let with_heads (from : I.db) heads (db : I.db) : I.db =
    List.fold_left (fun db h -> I.SMap.add h (I.relation_of from h) db) db heads

  (* Classify a recomputed head relation against its old value so downstream
     strata can still fast-path: None = unchanged, Additive if pure growth,
     Reset otherwise. *)
  let head_change ~(old_rel : I.relation) (new_rel : I.relation) : change option =
    if Tuple.Map.exists (fun u _ -> not (Tuple.Map.mem u new_rel)) old_rel then Some Reset
    else
      let additive = ref true in
      let delta =
        Tuple.Map.fold
          (fun u t_new acc ->
            match Tuple.Map.find_opt u old_rel with
            | None -> Tuple.Map.add u t_new acc
            | Some t_old ->
                if tag_equal t_old t_new then acc
                else begin
                  if not (P.saturated ~old:t_new (P.add t_old t_new)) then
                    additive := false;
                  Tuple.Map.add u t_new acc
                end)
          new_rel Tuple.Map.empty
      in
      if not !additive then Some Reset
      else if Tuple.Map.is_empty delta then None
      else Some (Additive delta)

  let full_eval st (db : I.db) config : I.db array =
    let mon = Interp.make_monitor config.Interp.budget in
    if mon.Interp.watched then Interp.check_wall config mon;
    let strata = st.compiled.Session.plan.Plan.strata in
    let snaps = Array.make (List.length strata) db in
    let _ =
      List.fold_left
        (fun (db, i) s ->
          let db = I.eval_stratum config mon db i s in
          snaps.(i) <- db;
          (db, i + 1))
        (db, 0) strata
    in
    st.stats.full_runs <- st.stats.full_runs + 1;
    snaps

  (* Additive fast path for one affected stratum: derive seed deltas through
     per-changed-predicate body variants evaluated against the new inputs
     (old head relations in place), then — if recursive — continue the
     semi-naive loop from the merged state.  Sound and bit-identical
     because, with idempotent ⊕ / equality saturation and all changed
     predicates in monotone positions, every cold derivation either touches
     no changed tuple (already ⊕-absorbed by the old head) or touches one
     (produced by some variant), and stale old-tag derivations are absorbed
     by their monotonically larger new-tag counterparts. *)
  let continue_stratum_delta st config mon i (s : Plan.stratum)
      (input_deltas : (string * I.relation) list) (db_base : I.db) =
    let changed_names = List.map fst input_deltas in
    let db_eval =
      List.fold_left
        (fun db (p, d) -> I.SMap.add (Plan.delta_name p) d db)
        db_base input_deltas
    in
    let cache = if config.Interp.cache_indices then Some (I.fresh_cache config) else None in
    mon.Interp.m_stratum <- i;
    mon.Interp.m_iterations <- 0;
    let seed_updates =
      List.map
        (fun (r : Plan.rule) ->
          let variants, next =
            Plan.delta_plans_from ~start:st.next_pid ~heads:changed_names r.Plan.body
          in
          st.next_pid <- next;
          let newly =
            I.normalize (List.concat_map (I.eval config mon cache db_eval) variants)
          in
          Interp.charge_tuples config mon (Tuple.Map.cardinal newly);
          (r.Plan.head, newly))
        s.Plan.rules
    in
    let seed_deltas =
      List.map
        (fun (h, newly) -> (h, I.delta_of ~old_rel:(I.relation_of db_base h) newly))
        seed_updates
    in
    let db1 =
      List.fold_left
        (fun db (h, newly) ->
          I.SMap.add h (I.merge_newly (I.relation_of db_base h) newly) db)
        db_base seed_updates
    in
    if s.Plan.recursive then I.continue_stratum config mon db1 i s ~deltas:seed_deltas
    else (db1, seed_deltas)

  (* One maintenance pass: returns (snapshots, edb) for the updated state
     without committing anything — the caller assigns on success, so a
     budget abort mid-pass leaves the session at its last good state. *)
  let update st ~changes ~overlay config : I.db array * I.db =
    let edb', cmap = apply_changes st ~changes ~overlay in
    if SMap.is_empty cmap then (st.snaps, st.edb)
    else begin
      let mon = Interp.make_monitor config.Interp.budget in
      if mon.Interp.watched then Interp.check_wall config mon;
      let strata = Array.of_list st.compiled.Session.plan.Plan.strata in
      let n = Array.length strata in
      let snaps' = Array.make n edb' in
      let changed = ref cmap in
      let prev = ref edb' in
      for i = 0 to n - 1 do
        let s = strata.(i) in
        let m = st.meta.(i) in
        let touched = SSet.filter (fun p -> SMap.mem p !changed) m.sm_reads in
        (* EDB facts asserted directly into a head predicate change the base
           relation its rules ⊕-merge into — treat like a non-additive input. *)
        let head_edb_change = List.exists (fun h -> SMap.mem h !changed) m.sm_heads in
        if SSet.is_empty touched && not head_edb_change then begin
          prev := with_heads st.snaps.(i) m.sm_heads !prev;
          st.stats.strata_reused <- st.stats.strata_reused + 1
        end
        else begin
          let additive_inputs =
            (not head_edb_change)
            && SSet.for_all
                 (fun p ->
                   (not (SSet.mem p m.sm_nonmono))
                   &&
                   match SMap.find_opt p !changed with
                   | Some (Additive _) -> true
                   | _ -> false)
                 touched
          in
          if additive_inputs then begin
            let input_deltas =
              SSet.fold
                (fun p acc ->
                  match SMap.find_opt p !changed with
                  | Some (Additive d) -> (p, d) :: acc
                  | _ -> acc)
                touched []
            in
            let db_base = with_heads st.snaps.(i) m.sm_heads !prev in
            let db', cum_deltas =
              continue_stratum_delta st config mon i s input_deltas db_base
            in
            List.iter
              (fun (h, d) ->
                if not (Tuple.Map.is_empty d) then
                  changed :=
                    SMap.update h
                      (function
                        | None -> Some (Additive d)
                        | Some c -> Some (join_change c (Additive d)))
                      !changed)
              cum_deltas;
            st.stats.strata_continued <- st.stats.strata_continued + 1;
            prev := db'
          end
          else begin
            (* Delete-rederive at stratum granularity: [!prev] holds the
               updated inputs and no stale own-head relations (beyond the
               EDB base the cold run also starts from), so this matches a
               cold evaluation of the stratum exactly. *)
            let db' = I.eval_stratum config mon !prev i s in
            List.iter
              (fun h ->
                match
                  head_change
                    ~old_rel:(I.relation_of st.snaps.(i) h)
                    (I.relation_of db' h)
                with
                | None -> ()
                | Some c ->
                    changed :=
                      SMap.update h
                        (function None -> Some c | Some c0 -> Some (join_change c0 c))
                        !changed)
              m.sm_heads;
            st.stats.strata_recomputed <- st.stats.strata_recomputed + 1;
            prev := db'
          end
        end;
        snaps'.(i) <- !prev
      done;
      (snaps', edb')
    end

  let engine_of (st : state) : engine =
    {
      e_query =
        (fun ~changes ~overlay ~facts:_ ~outputs ~budget ->
          let config = effective_config st.config budget in
          let snaps', edb' =
            try
              if Array.length st.snaps = 0 then begin
                (* first evaluation (or a program with zero strata) *)
                let edb', _ = apply_changes st ~changes ~overlay in
                (full_eval st edb' config, edb')
              end
              else update st ~changes ~overlay config
            with
            | Exec_error.Error e -> raise (Session.Error e)
            | Aggregate.Unsupported msg ->
                raise (Session.Error (Exec_error.Runtime_error { msg }))
          in
          let final =
            if Array.length snaps' = 0 then edb' else snaps'.(Array.length snaps' - 1)
          in
          let out_rels =
            match outputs with
            | Some o -> o
            | None -> st.compiled.Session.ram.Ram.outputs
          in
          let result =
            {
              Session.outputs = List.map (fun pred -> (pred, I.recover final pred)) out_rels;
              fact_ids = [];
              stats = config.Interp.stats;
            }
          in
          (* commit *)
          st.edb <- edb';
          st.snaps <- snaps';
          st.stats.queries <- st.stats.queries + 1;
          if changes <> [] then st.stats.update_batches <- st.stats.update_batches + 1;
          result);
    }
end

(* Cold-recompute engine: bit-identical by construction.  Each dirty query
   re-runs [Session.run] under a fresh provenance instance and a copy of the
   base RNG (so sampler draws and variable ids replay exactly as a cold run
   would); clean repeat queries return the cached last result. *)
let recompute_engine (compiled : Session.compiled) (config : Interp.config)
    (spec : Registry.spec) (stats : session_stats) : engine =
  let base_rng = Scallop_utils.Rng.copy config.Interp.rng in
  let last : (string list option * Session.result) option ref = ref None in
  {
    e_query =
      (fun ~changes ~overlay:_ ~facts ~outputs ~budget ->
        match !last with
        | Some (o, r) when changes = [] && o = outputs ->
            stats.queries <- stats.queries + 1;
            r
        | _ ->
            let config = effective_config config budget in
            let config = { config with Interp.rng = Scallop_utils.Rng.copy base_rng } in
            let r =
              Session.run ~config ~provenance:(Registry.create spec) compiled ~facts
                ?outputs ()
            in
            stats.queries <- stats.queries + 1;
            if changes <> [] then stats.update_batches <- stats.update_batches + 1;
            stats.full_runs <- stats.full_runs + 1;
            last := Some (outputs, r);
            r);
  }

(* ---- sessions ------------------------------------------------------------- *)

type t = {
  compiled : Session.compiled;
  spec : Registry.spec;
  hash : string;  (** {!Session.source_hash} of the program source *)
  config : Interp.config;
  base_rng : Scallop_utils.Rng.t;  (** RNG state at open; oracle runs copy it *)
  mutex : Mutex.t;
  sstats : session_stats;
  engine : engine;
  exact : bool;  (** true = delta continuation, false = cold recompute *)
  mutable closed : bool;
  mutable overlay : Provenance.Input.t Tuple.Map.t SMap.t;  (** current dynamic EDB *)
  mutable order : (string * Tuple.t) list;
      (** reverse first-assertion order; defines the canonical fact order a
          cold run receives, so re-asserting keeps a fact's position *)
  mutable touched : (string * Tuple.t) list;  (** changelog since last good query *)
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let ensure_open t = if t.closed then invalid_input "session is closed"

let open_session ?(config = Interp.default_config ()) ?expect_hash ~spec source : t =
  let hash = Session.source_hash source in
  (match expect_hash with
  | Some h when not (String.equal h hash) ->
      invalid_input "program hash mismatch: expected %s, source hashes to %s" h hash
  | _ -> ());
  let compiled = Session.compile_cached source in
  let sstats = empty_session_stats () in
  let exact = exact_incremental spec && not (plan_has_sampler compiled.Session.plan) in
  let engine =
    if exact then
      let module P = (val Registry.create spec : Provenance.S) in
      let module E = Exact_engine (P) in
      E.engine_of
        (E.make compiled config (stratum_metas compiled.Session.plan) sstats)
    else recompute_engine compiled config spec sstats
  in
  {
    compiled;
    spec;
    hash;
    config;
    base_rng = Scallop_utils.Rng.copy config.Interp.rng;
    mutex = Mutex.create ();
    sstats;
    engine;
    exact;
    closed = false;
    overlay = SMap.empty;
    order = [];
    touched = [];
  }

let program_hash t = t.hash
let spec t = t.spec
let is_exact t = t.exact
let is_closed t = locked t (fun () -> t.closed)
let stats t : session_stats = locked t (fun () -> { t.sstats with queries = t.sstats.queries })

let assert_fact t ~pred ?prob ?me_group tuple =
  locked t (fun () ->
      ensure_open t;
      if not (Hashtbl.mem t.compiled.Session.rel_types pred) then
        invalid_input "assert into unknown relation %s" pred;
      let tuple = Session.coerce_tuple t.compiled pred tuple in
      let input = { Provenance.Input.prob; me_group } in
      let rel =
        match SMap.find_opt pred t.overlay with Some r -> r | None -> Tuple.Map.empty
      in
      let existed = Tuple.Map.mem tuple rel in
      t.overlay <- SMap.add pred (Tuple.Map.add tuple input rel) t.overlay;
      if not existed then t.order <- (pred, tuple) :: t.order;
      t.touched <- (pred, tuple) :: t.touched)

let retract_fact t ~pred tuple =
  locked t (fun () ->
      ensure_open t;
      let tuple =
        if Hashtbl.mem t.compiled.Session.rel_types pred then
          Session.coerce_tuple t.compiled pred tuple
        else tuple
      in
      let rel =
        match SMap.find_opt pred t.overlay with Some r -> r | None -> Tuple.Map.empty
      in
      if not (Tuple.Map.mem tuple rel) then
        invalid_input "retract %s%a: fact was never asserted" pred Tuple.pp tuple;
      t.overlay <- SMap.add pred (Tuple.Map.remove tuple rel) t.overlay;
      t.order <-
        List.filter (fun (p, u) -> not (String.equal p pred && Tuple.equal u tuple)) t.order;
      t.touched <- (pred, tuple) :: t.touched)

(* ---- pre-validation (the write-ahead discipline) ---------------------------

   A durability layer must order "record the op" before "apply the op", yet
   never record an op that the session would reject — a rejected op in the
   log would poison replay.  These checks raise exactly the [Invalid_input]
   the mutating call would raise, without mutating anything, so a caller
   can validate → log → apply and know the apply cannot fail. *)

(** [check_assert t ~pred tuple] validates an assert without applying it:
    raises the same {!Session.Error} [assert_fact] would, and returns the
    tuple coerced to the relation's column types (the canonical form worth
    logging). *)
let check_assert t ~pred tuple : Tuple.t =
  locked t (fun () ->
      ensure_open t;
      if not (Hashtbl.mem t.compiled.Session.rel_types pred) then
        invalid_input "assert into unknown relation %s" pred;
      Session.coerce_tuple t.compiled pred tuple)

(** [check_retract t ~pred tuple] validates a retract without applying it:
    raises the same {!Session.Error} [retract_fact] would, and returns the
    coerced tuple. *)
let check_retract t ~pred tuple : Tuple.t =
  locked t (fun () ->
      ensure_open t;
      let tuple =
        if Hashtbl.mem t.compiled.Session.rel_types pred then
          Session.coerce_tuple t.compiled pred tuple
        else tuple
      in
      let rel =
        match SMap.find_opt pred t.overlay with Some r -> r | None -> Tuple.Map.empty
      in
      if not (Tuple.Map.mem tuple rel) then
        invalid_input "retract %s%a: fact was never asserted" pred Tuple.pp tuple;
      tuple)

(* The full current EDB in canonical order: predicates by first assertion,
   facts within a predicate by first assertion.  This is the fact list the
   differential oracle replays. *)
let current_facts_locked t : (string * (Provenance.Input.t * Tuple.t) list) list =
  let by_pred : (string, (Provenance.Input.t * Tuple.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let pred_order = ref [] in
  List.iter
    (fun (pred, tuple) ->
      match SMap.find_opt pred t.overlay with
      | None -> ()
      | Some rel -> (
          match Tuple.Map.find_opt tuple rel with
          | None -> ()
          | Some input ->
              let l =
                match Hashtbl.find_opt by_pred pred with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.add by_pred pred l;
                    pred_order := pred :: !pred_order;
                    l
              in
              l := (input, tuple) :: !l))
    (List.rev t.order);
  List.rev_map (fun pred -> (pred, List.rev !(Hashtbl.find by_pred pred))) !pred_order

let current_facts t = locked t (fun () -> current_facts_locked t)

let dedup_changes changes =
  List.sort_uniq
    (fun (p1, u1) (p2, u2) ->
      match String.compare p1 p2 with 0 -> Tuple.compare u1 u2 | c -> c)
    changes

let query ?outputs ?budget t : Session.result =
  locked t (fun () ->
      ensure_open t;
      let changes = dedup_changes t.touched in
      let overlay pred tuple =
        match SMap.find_opt pred t.overlay with
        | None -> None
        | Some rel -> Tuple.Map.find_opt tuple rel
      in
      let facts = current_facts_locked t in
      let r = t.engine.e_query ~changes ~overlay ~facts ~outputs ~budget in
      (* only a successful query consumes the changelog: a budget abort
         leaves the pending changes in place for a retry *)
      t.touched <- [];
      r)

let close t =
  locked t (fun () ->
      ensure_open t;
      t.closed <- true)

(** The differential oracle: a cold {!Session.run} over the session's
    current EDB under a fresh provenance and the session's base config.
    [query] must be bit-identical to this after any update sequence. *)
let run_cold ?outputs t : Session.result =
  locked t (fun () ->
      ensure_open t;
      let facts = current_facts_locked t in
      let config =
        { t.config with Interp.rng = Scallop_utils.Rng.copy t.base_rng }
      in
      Session.run ~config ~provenance:(Registry.create t.spec) t.compiled ~facts
        ?outputs ())
