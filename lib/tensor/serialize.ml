(** Bit-exact binary serialization of training state.

    Everything a crash-safe checkpoint must capture round-trips through this
    module: {!Nd} tensors, {!Autodiff} parameter lists, {!Optim} state
    (SGD velocity, Adam m/v/t) and {!Scallop_utils.Rng} stream positions.
    Floats are written as their IEEE-754 bit patterns ([Int64.bits_of_float]),
    so a snapshot → restore → snapshot cycle is byte-identical and a resumed
    run continues the exact numeric trajectory of the uninterrupted one —
    including NaN payloads and signed zeros.

    The encoding is a flat little-endian stream with no self-description;
    framing, versioning and corruption detection are the job of
    {!Scallop_utils.Atomic_io}'s snapshot envelope.  Readers raise
    {!Corrupt} on any structural mismatch (bad tag, shape mismatch,
    truncation), which checkpoint loading treats like a failed checksum:
    fall back to an older generation. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

(* ---- writers ------------------------------------------------------------------ *)

let put_i64 (b : Buffer.t) (x : int64) = Buffer.add_int64_le b x
let put_int b (n : int) = put_i64 b (Int64.of_int n)
let put_float b (f : float) = put_i64 b (Int64.bits_of_float f)

let put_float_list b (l : float list) =
  put_int b (List.length l);
  List.iter (put_float b) l

let put_nd b (t : Nd.t) =
  put_int b (Array.length t.Nd.shape);
  Array.iter (put_int b) t.Nd.shape;
  Array.iter (put_float b) t.Nd.data

let put_nd_array b (a : Nd.t array) =
  put_int b (Array.length a);
  Array.iter (put_nd b) a

(** Parameter values only (gradients are transient; a checkpoint is taken
    between optimizer steps where they carry no information). *)
let put_params b (params : Autodiff.t list) =
  put_int b (List.length params);
  List.iter (fun (p : Autodiff.t) -> put_nd b p.Autodiff.value) params

let put_rng b (rng : Scallop_utils.Rng.t) = put_i64 b (Scallop_utils.Rng.state rng)

let put_optim b (o : Optim.t) =
  match o.Optim.state with
  | Optim.Sgd_state { velocity } ->
      put_int b 1;
      put_nd_array b velocity
  | Optim.Adam_state { m; v; t } ->
      put_int b 2;
      put_int b t;
      put_nd_array b m;
      put_nd_array b v

(* ---- readers ------------------------------------------------------------------ *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let at_end r = r.pos >= String.length r.data

let get_i64 r : int64 =
  if r.pos + 8 > String.length r.data then corrupt "truncated stream at byte %d" r.pos;
  let x = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  x

let get_int r : int = Int64.to_int (get_i64 r)
let get_float r : float = Int64.float_of_bits (get_i64 r)

let get_float_list r : float list =
  let n = get_int r in
  if n < 0 then corrupt "negative list length %d" n;
  List.init n (fun _ -> get_float r)

let get_nd r : Nd.t =
  let rank = get_int r in
  if rank < 0 || rank > 16 then corrupt "implausible tensor rank %d" rank;
  let shape = Array.init rank (fun _ -> get_int r) in
  let n = Nd.shape_numel shape in
  if n < 0 then corrupt "negative tensor size";
  { Nd.shape; data = Array.init n (fun _ -> get_float r) }

let get_nd_array r : Nd.t array =
  let n = get_int r in
  if n < 0 then corrupt "negative tensor-array length %d" n;
  Array.init n (fun _ -> get_nd r)

(* Restore [src]'s elements into the live tensor [dst] in place, so closures
   holding [dst] (optimizer steps, parameter updates) see the state. *)
let blit_nd ~what (src : Nd.t) (dst : Nd.t) =
  if src.Nd.shape <> dst.Nd.shape then
    corrupt "%s: snapshot shape does not match live tensor" what;
  Array.blit src.Nd.data 0 dst.Nd.data 0 (Array.length src.Nd.data)

(** Restore parameter values in place; the parameter list must match the
    snapshot in length and shapes (i.e. the same model architecture). *)
let get_params_into r (params : Autodiff.t list) =
  let n = get_int r in
  if n <> List.length params then
    corrupt "parameter count mismatch: snapshot %d, live %d" n (List.length params);
  List.iteri
    (fun i (p : Autodiff.t) ->
      blit_nd ~what:(Printf.sprintf "param %d" i) (get_nd r) p.Autodiff.value)
    params

(** Restore a generator to the serialized stream position. *)
let get_rng_into r (rng : Scallop_utils.Rng.t) =
  Scallop_utils.Rng.set_state rng (get_i64 r)

let blit_nd_array ~what (src : Nd.t array) (dst : Nd.t array) =
  if Array.length src <> Array.length dst then
    corrupt "%s: tensor-array length mismatch" what;
  Array.iteri (fun i s -> blit_nd ~what:(Printf.sprintf "%s[%d]" what i) s dst.(i)) src

(** Restore optimizer state in place; the optimizer must have the same kind
    and parameter shapes as the snapshotted one. *)
let get_optim_into r (o : Optim.t) =
  let tag = get_int r in
  match (tag, o.Optim.state) with
  | 1, Optim.Sgd_state { velocity } -> blit_nd_array ~what:"sgd velocity" (get_nd_array r) velocity
  | 2, Optim.Adam_state st ->
      st.t <- get_int r;
      blit_nd_array ~what:"adam m" (get_nd_array r) st.m;
      blit_nd_array ~what:"adam v" (get_nd_array r) st.v
  | 1, Optim.Adam_state _ -> corrupt "snapshot holds SGD state but optimizer is Adam"
  | 2, Optim.Sgd_state _ -> corrupt "snapshot holds Adam state but optimizer is SGD"
  | t, _ -> corrupt "unknown optimizer tag %d" t

(* ---- convenience: single-value round trips ------------------------------------ *)

let nd_to_string (t : Nd.t) =
  let b = Buffer.create (16 + (8 * Nd.numel t)) in
  put_nd b t;
  Buffer.contents b

let nd_of_string s = get_nd (reader s)
