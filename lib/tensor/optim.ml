(** Gradient-descent optimizers over {!Autodiff} parameters.

    Optimizer internals (SGD momentum velocities, Adam first/second moment
    estimates and step count) are exposed as a first-class {!state} value so
    checkpointing can serialize them ({!Serialize}) and a resumed run can
    continue the {e exact} optimization trajectory — resuming Adam without
    [m]/[v]/[t] silently restarts the bias-correction warmup and diverges
    from the uninterrupted run. *)

(** Saveable optimizer state.  The arrays alias the tensors the [step]
    closure updates, so mutating them in place (e.g. when restoring a
    checkpoint) is visible to subsequent steps. *)
type state =
  | Sgd_state of { velocity : Nd.t array }
  | Adam_state of { m : Nd.t array; v : Nd.t array; mutable t : int }

type t = {
  params : Autodiff.t list;
  step : unit -> unit;
  zero_grad : unit -> unit;
  state : state;
}

let apply_update params update =
  List.iteri
    (fun i (p : Autodiff.t) ->
      match p.Autodiff.grad with
      | None -> ()
      | Some g -> update i p g)
    params

(** Plain SGD with optional momentum. *)
let sgd ?(momentum = 0.0) ~lr (params : Autodiff.t list) : t =
  let velocity =
    List.map (fun (p : Autodiff.t) -> Nd.zeros p.Autodiff.value.Nd.shape) params
    |> Array.of_list
  in
  let step () =
    apply_update params (fun i p g ->
        if momentum > 0.0 then begin
          let v = velocity.(i) in
          Array.iteri
            (fun j gj -> v.Nd.data.(j) <- (momentum *. v.Nd.data.(j)) +. gj)
            g.Nd.data;
          Array.iteri
            (fun j vj -> p.Autodiff.value.Nd.data.(j) <- p.Autodiff.value.Nd.data.(j) -. (lr *. vj))
            v.Nd.data
        end
        else
          Array.iteri
            (fun j gj -> p.Autodiff.value.Nd.data.(j) <- p.Autodiff.value.Nd.data.(j) -. (lr *. gj))
            g.Nd.data)
  in
  {
    params;
    step;
    zero_grad = (fun () -> Autodiff.zero_grad params);
    state = Sgd_state { velocity };
  }

(** Adam [Kingma & Ba 2015], the optimizer used by the paper's training
    setups. *)
let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr (params : Autodiff.t list) : t =
  let m = List.map (fun (p : Autodiff.t) -> Nd.zeros p.Autodiff.value.Nd.shape) params |> Array.of_list in
  let v = List.map (fun (p : Autodiff.t) -> Nd.zeros p.Autodiff.value.Nd.shape) params |> Array.of_list in
  let st = Adam_state { m; v; t = 0 } in
  let step () =
    (match st with Adam_state s -> s.t <- s.t + 1 | _ -> assert false);
    let t = match st with Adam_state s -> s.t | _ -> assert false in
    let bc1 = 1.0 -. (beta1 ** float_of_int t) in
    let bc2 = 1.0 -. (beta2 ** float_of_int t) in
    apply_update params (fun i p g ->
        let mi = m.(i) and vi = v.(i) in
        Array.iteri
          (fun j gj ->
            mi.Nd.data.(j) <- (beta1 *. mi.Nd.data.(j)) +. ((1.0 -. beta1) *. gj);
            vi.Nd.data.(j) <- (beta2 *. vi.Nd.data.(j)) +. ((1.0 -. beta2) *. gj *. gj);
            let mhat = mi.Nd.data.(j) /. bc1 in
            let vhat = vi.Nd.data.(j) /. bc2 in
            p.Autodiff.value.Nd.data.(j) <-
              p.Autodiff.value.Nd.data.(j) -. (lr *. mhat /. (sqrt vhat +. eps)))
          g.Nd.data)
  in
  { params; step; zero_grad = (fun () -> Autodiff.zero_grad params); state = st }

(* ---- numeric guardrails ----------------------------------------------------------- *)

(** Global L2 norm of all present parameter gradients. *)
let grad_norm (o : t) : float =
  let acc = ref 0.0 in
  List.iter
    (fun (p : Autodiff.t) ->
      match p.Autodiff.grad with
      | None -> ()
      | Some g -> Array.iter (fun x -> acc := !acc +. (x *. x)) g.Nd.data)
    o.params;
  sqrt !acc

(** [clip_grad_norm ~max_norm o] rescales all gradients in place so their
    global L2 norm is at most [max_norm] (the standard defense against the
    exploding gradients a near-deterministic provenance output can
    produce); returns the pre-clip norm. *)
let clip_grad_norm ~max_norm (o : t) : float =
  let n = grad_norm o in
  if Float.is_finite n && n > max_norm && n > 0.0 then begin
    let scale = max_norm /. n in
    List.iter
      (fun (p : Autodiff.t) ->
        match p.Autodiff.grad with
        | None -> ()
        | Some g -> Array.iteri (fun j x -> g.Nd.data.(j) <- x *. scale) g.Nd.data)
      o.params
  end;
  n
