(** Reverse-mode automatic differentiation over {!Nd} arrays.

    A [Var.t] records its value and, when reachable from parameters, the
    backward closures linking it to its parents.  [backward] performs the
    reverse topological sweep accumulating gradients — the ∂r/∂θ half of the
    paper's training pipeline, with {!Scallop_nn.Scallop_layer} supplying
    the ∂y/∂r half through the provenance framework. *)

type t = {
  id : int;
  mutable value : Nd.t;
  mutable grad : Nd.t option;
  parents : parent list;
  requires_grad : bool;
  op : string;
}

and parent = { var : t; push : Nd.t -> Nd.t  (** upstream grad → contribution *) }

(* Atomic so variables may be created from any domain (the batched Scallop
   layer keeps graph construction on the caller, but nothing should corrupt
   ids if user code builds graphs inside pool workers). *)
let counter = Atomic.make 0

let make ?(parents = []) ?(op = "leaf") ~requires_grad value =
  { id = 1 + Atomic.fetch_and_add counter 1; value; grad = None; parents; requires_grad; op }

(** A constant (no gradient tracked). *)
let const v = make ~requires_grad:false v

(** A trainable parameter. *)
let param v = make ~requires_grad:true v

let value t = t.value
let grad t = t.grad

let needs_grad parents = List.exists (fun p -> p.var.requires_grad) parents

let unary op v ~f ~df =
  let parents = [ { var = v; push = df } ] in
  make ~parents ~op ~requires_grad:(needs_grad parents) (f v.value)

let binary op a b ~f ~dfa ~dfb =
  let parents = [ { var = a; push = dfa }; { var = b; push = dfb } ] in
  make ~parents ~op ~requires_grad:(needs_grad parents) (f a.value b.value)

(* ---- arithmetic ------------------------------------------------------------- *)

let add a b = binary "add" a b ~f:Nd.add ~dfa:Fun.id ~dfb:Fun.id
let sub a b = binary "sub" a b ~f:Nd.sub ~dfa:Fun.id ~dfb:Nd.neg

let mul a b =
  binary "mul" a b ~f:Nd.mul ~dfa:(fun g -> Nd.mul g b.value) ~dfb:(fun g -> Nd.mul g a.value)

let scale k v = unary "scale" v ~f:(Nd.scale k) ~df:(Nd.scale k)
let neg v = scale (-1.0) v

let matmul a b =
  binary "matmul" a b
    ~f:Nd.matmul
    ~dfa:(fun g -> Nd.matmul g (Nd.transpose b.value))
    ~dfb:(fun g -> Nd.matmul (Nd.transpose a.value) g)

let add_rowvec mat vec =
  binary "add_rowvec" mat vec
    ~f:Nd.add_rowvec
    ~dfa:Fun.id
    ~dfb:(fun g -> Nd.reshape (Nd.sum_rows g) vec.value.Nd.shape)

(* ---- activations --------------------------------------------------------------- *)

let relu v =
  unary "relu" v
    ~f:(Nd.map (fun x -> Float.max 0.0 x))
    ~df:(fun g -> Nd.map2 (fun gx x -> if x > 0.0 then gx else 0.0) g v.value)

let sigmoid v =
  let out = Nd.map (fun x -> 1.0 /. (1.0 +. exp (-.x))) v.value in
  let parents =
    [ { var = v; push = (fun g -> Nd.map2 (fun gx y -> gx *. y *. (1.0 -. y)) g out) } ]
  in
  make ~parents ~op:"sigmoid" ~requires_grad:v.requires_grad out

let tanh_ v =
  let out = Nd.map Float.tanh v.value in
  let parents =
    [ { var = v; push = (fun g -> Nd.map2 (fun gx y -> gx *. (1.0 -. (y *. y))) g out) } ]
  in
  make ~parents ~op:"tanh" ~requires_grad:v.requires_grad out

(** Row-wise softmax with the exact Jacobian-vector backward. *)
let softmax v =
  let out = Nd.softmax_rows v.value in
  let push g =
    let m = out.Nd.shape.(0) and n = out.Nd.shape.(1) in
    let res = Nd.zeros [| m; n |] in
    for i = 0 to m - 1 do
      (* dL/dx_j = y_j * (g_j - Σ_k g_k y_k) *)
      let dot = ref 0.0 in
      for k = 0 to n - 1 do
        dot := !dot +. (Nd.get2 g i k *. Nd.get2 out i k)
      done;
      for j = 0 to n - 1 do
        Nd.set2 res i j (Nd.get2 out i j *. (Nd.get2 g i j -. !dot))
      done
    done;
    res
  in
  make ~parents:[ { var = v; push } ] ~op:"softmax" ~requires_grad:v.requires_grad out

(* ---- reductions and losses --------------------------------------------------------- *)

let sum v =
  unary "sum" v ~f:(fun x -> Nd.scalar (Nd.sum x)) ~df:(fun g ->
      Nd.create v.value.Nd.shape g.Nd.data.(0))

let mean v =
  let n = float_of_int (Nd.numel v.value) in
  unary "mean" v
    ~f:(fun x -> Nd.scalar (Nd.mean x))
    ~df:(fun g -> Nd.create v.value.Nd.shape (g.Nd.data.(0) /. n))

(** Binary cross-entropy between predicted probabilities [p] (any shape) and
    targets [y] (same shape, entries in [0,1]); mean over elements. *)
let bce_loss ~eps p y =
  let clamp x = Float.min (1.0 -. eps) (Float.max eps x) in
  let n = float_of_int (Nd.numel p.value) in
  let f pv =
    Nd.scalar
      (-.(Nd.sum
            (Nd.map2
               (fun pi yi ->
                 let pi = clamp pi in
                 (yi *. log pi) +. ((1.0 -. yi) *. log (1.0 -. pi)))
               pv y.value))
        /. n)
  in
  let push g =
    let s = g.Nd.data.(0) /. n in
    Nd.map2
      (fun pi yi ->
        let pi = clamp pi in
        s *. ((pi -. yi) /. (pi *. (1.0 -. pi))))
      p.value y.value
  in
  make ~parents:[ { var = p; push } ] ~op:"bce" ~requires_grad:p.requires_grad (f p.value)

(** Cross-entropy of row-softmax probabilities [p] against integer labels;
    [p] must already be probabilities (rows sum to 1). *)
let nll_loss ~eps p labels =
  let m = p.value.Nd.shape.(0) in
  let f pv =
    let total = ref 0.0 in
    Array.iteri
      (fun i label -> total := !total -. log (Float.max eps (Nd.get2 pv i label)))
      labels;
    Nd.scalar (!total /. float_of_int m)
  in
  let push g =
    let s = g.Nd.data.(0) /. float_of_int m in
    let res = Nd.zeros p.value.Nd.shape in
    Array.iteri
      (fun i label ->
        Nd.set2 res i label (-.s /. Float.max eps (Nd.get2 p.value i label)))
      labels;
    res
  in
  make ~parents:[ { var = p; push } ] ~op:"nll" ~requires_grad:p.requires_grad (f p.value)

let mse_loss p y =
  let n = float_of_int (Nd.numel p.value) in
  let f pv = Nd.scalar (Nd.sum (Nd.map2 (fun a b -> (a -. b) ** 2.0) pv y.value) /. n) in
  let push g =
    let s = 2.0 *. g.Nd.data.(0) /. n in
    Nd.map2 (fun a b -> s *. (a -. b)) p.value y.value
  in
  make ~parents:[ { var = p; push } ] ~op:"mse" ~requires_grad:p.requires_grad (f p.value)

(** Create a variable from explicit value and a custom backward; the escape
    hatch used by the Scallop differentiable layer, whose "op" is a whole
    logic program. *)
let custom ~op ~value ~parents = make ~parents ~op ~requires_grad:(needs_grad parents) value

(* ---- numeric guardrails ------------------------------------------------------------- *)

(** Raised by {!assert_finite} and {!backward_guarded} when a NaN or
    infinity is found; the payload names the offending op. *)
exception Non_finite of string

(** [assert_finite ~what v] raises {!Non_finite} if [v]'s value contains a
    NaN or an infinity. *)
let assert_finite ?what (v : t) =
  if not (Nd.is_finite v.value) then
    Non_finite (Printf.sprintf "non-finite value in %s" (Option.value what ~default:v.op))
    |> raise

(* ---- backward pass ------------------------------------------------------------------ *)

let backward_internal ~guard (root : t) =
  (* Topological order via DFS; gradients flow from root to leaves. *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit v =
    if (not (Hashtbl.mem visited v.id)) && v.requires_grad then begin
      Hashtbl.replace visited v.id ();
      List.iter (fun p -> visit p.var) v.parents;
      order := v :: !order
    end
  in
  visit root;
  if guard && not (Nd.is_finite root.value) then
    raise (Non_finite (Printf.sprintf "non-finite loss value (op %s)" root.op));
  (* root gradient: ones *)
  root.grad <- Some (Nd.ones root.value.Nd.shape);
  List.iter
    (fun v ->
      match v.grad with
      | None -> ()
      | Some g ->
          List.iter
            (fun p ->
              if p.var.requires_grad then begin
                let contrib = p.push g in
                if guard && not (Nd.is_finite contrib) then
                  raise
                    (Non_finite
                       (Printf.sprintf "non-finite gradient flowing from %s into %s" v.op
                          p.var.op));
                match p.var.grad with
                | None -> p.var.grad <- Some (Nd.copy contrib)
                | Some acc -> Nd.add_ acc contrib
              end)
            v.parents)
    !order

let backward (root : t) = backward_internal ~guard:false root

(** Like {!backward}, but raises {!Non_finite} as soon as the loss value or
    any gradient contribution contains a NaN/Inf — {e before} the bad
    numbers can reach an optimizer.  Partially accumulated gradients are
    left behind on failure; callers recover with [zero_grad] and skip the
    optimizer step (the quarantine path of resilient training loops). *)
let backward_guarded (root : t) = backward_internal ~guard:true root

let zero_grad (params : t list) = List.iter (fun p -> p.grad <- None) params
