(** Dense float ndarrays (rank ≤ 2 in practice): the raw storage layer under
    the autodiff {!Autodiff.Var}.  This plays the role PyTorch tensors play
    for the original Scallop (see DESIGN.md, substitutions): enough linear
    algebra to train the MLP perception models of the benchmark suite. *)

type t = { data : float array; shape : int array }

let numel t = Array.length t.data

let size t dim = t.shape.(dim)

let rank t = Array.length t.shape

let shape_numel shape = Array.fold_left ( * ) 1 shape

let create shape v = { data = Array.make (shape_numel shape) v; shape }
let zeros shape = create shape 0.0
let ones shape = create shape 1.0
let scalar v = { data = [| v |]; shape = [| 1; 1 |] }

let of_array shape data =
  if Array.length data <> shape_numel shape then invalid_arg "Nd.of_array: shape mismatch";
  { data; shape }

let init shape f = { data = Array.init (shape_numel shape) f; shape }

let copy t = { data = Array.copy t.data; shape = Array.copy t.shape }

let same_shape a b = a.shape = b.shape

let reshape t shape =
  if shape_numel shape <> numel t then invalid_arg "Nd.reshape: element count mismatch";
  { data = t.data; shape }

let get1 t i = t.data.(i)
let set1 t i v = t.data.(i) <- v
let get2 t i j = t.data.((i * t.shape.(1)) + j)
let set2 t i j v = t.data.((i * t.shape.(1)) + j) <- v

let map f t = { data = Array.map f t.data; shape = t.shape }

let map2 f a b =
  if not (same_shape a b) then invalid_arg "Nd.map2: shape mismatch";
  { data = Array.init (numel a) (fun i -> f a.data.(i) b.data.(i)); shape = a.shape }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let div a b = map2 ( /. ) a b
let scale k t = map (fun x -> k *. x) t
let neg t = scale (-1.0) t

(* In-place accumulation, used by gradient summation. *)
let add_ dst src =
  if not (same_shape dst src) then invalid_arg "Nd.add_: shape mismatch";
  Array.iteri (fun i v -> dst.data.(i) <- dst.data.(i) +. v) src.data

(** True iff every element is neither NaN nor infinite. *)
let is_finite t = Array.for_all Float.is_finite t.data

let sum t = Array.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)

let max_elt t = Array.fold_left Float.max neg_infinity t.data

(** 2-D matrix multiply: (m×k) · (k×n) → (m×n). *)
let matmul a b =
  if rank a <> 2 || rank b <> 2 then invalid_arg "Nd.matmul: rank-2 required";
  let m = a.shape.(0) and k = a.shape.(1) and n = b.shape.(1) in
  if b.shape.(0) <> k then invalid_arg "Nd.matmul: inner dimension mismatch";
  let out = zeros [| m; n |] in
  for i = 0 to m - 1 do
    for l = 0 to k - 1 do
      let av = a.data.((i * k) + l) in
      if av <> 0.0 then
        for j = 0 to n - 1 do
          out.data.((i * n) + j) <- out.data.((i * n) + j) +. (av *. b.data.((l * n) + j))
        done
    done
  done;
  out

let transpose t =
  if rank t <> 2 then invalid_arg "Nd.transpose: rank-2 required";
  let m = t.shape.(0) and n = t.shape.(1) in
  init [| n; m |] (fun idx ->
      let i = idx / m and j = idx mod m in
      t.data.((j * n) + i))

(** Add a row vector (1×n or n) to every row of an m×n matrix. *)
let add_rowvec mat vec =
  if rank mat <> 2 then invalid_arg "Nd.add_rowvec";
  let m = mat.shape.(0) and n = mat.shape.(1) in
  if numel vec <> n then invalid_arg "Nd.add_rowvec: width mismatch";
  init [| m; n |] (fun idx -> mat.data.(idx) +. vec.data.(idx mod n))

(** Column-wise sum of an m×n matrix → 1×n (gradient of add_rowvec). *)
let sum_rows mat =
  let m = mat.shape.(0) and n = mat.shape.(1) in
  let out = zeros [| 1; n |] in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      out.data.(j) <- out.data.(j) +. mat.data.((i * n) + j)
    done
  done;
  out

(** Row-wise softmax of an m×n matrix. *)
let softmax_rows mat =
  let m = mat.shape.(0) and n = mat.shape.(1) in
  let out = zeros [| m; n |] in
  for i = 0 to m - 1 do
    let mx = ref neg_infinity in
    for j = 0 to n - 1 do
      mx := Float.max !mx mat.data.((i * n) + j)
    done;
    let s = ref 0.0 in
    for j = 0 to n - 1 do
      let e = exp (mat.data.((i * n) + j) -. !mx) in
      out.data.((i * n) + j) <- e;
      s := !s +. e
    done;
    for j = 0 to n - 1 do
      out.data.((i * n) + j) <- out.data.((i * n) + j) /. !s
    done
  done;
  out

(** Index of the max element in row [i]. *)
let argmax_row mat i =
  let n = mat.shape.(1) in
  let best = ref 0 in
  for j = 1 to n - 1 do
    if mat.data.((i * n) + j) > mat.data.((i * n) + !best) then best := j
  done;
  !best

let row mat i =
  let n = mat.shape.(1) in
  init [| 1; n |] (fun j -> mat.data.((i * n) + j))

(** Stack a list of row vectors (each 1×n) into an m×n matrix. *)
let stack_rows rows =
  match rows with
  | [] -> invalid_arg "Nd.stack_rows: empty"
  | r0 :: _ ->
      let n = numel r0 in
      let m = List.length rows in
      let out = zeros [| m; n |] in
      List.iteri (fun i r -> Array.blit r.data 0 out.data (i * n) n) rows;
      out

(* ---- random initialization ------------------------------------------------ *)

let randn rng ?(mu = 0.0) ?(sigma = 1.0) shape =
  init shape (fun _ -> Scallop_utils.Rng.gaussian ~mu ~sigma rng)

let uniform rng lo hi shape = init shape (fun _ -> Scallop_utils.Rng.uniform rng lo hi)

(** Glorot/Xavier uniform initialization for a fan_in×fan_out weight. *)
let xavier rng fan_in fan_out =
  let limit = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  uniform rng (-.limit) limit [| fan_in; fan_out |]

let pp fmt t =
  Fmt.pf fmt "tensor%a[%a]"
    (Fmt.brackets (Fmt.array ~sep:(Fmt.any "x") Fmt.int))
    t.shape
    (Fmt.array ~sep:(Fmt.any ", ") (fun fmt v -> Fmt.pf fmt "%.3f" v))
    (if numel t <= 16 then t.data else Array.sub t.data 0 16)
