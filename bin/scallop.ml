(** The Scallop interpreter CLI (the [scli] role of paper Sec. 5).

    [scallop run FILE] parses, compiles and executes a .scl file under a
    chosen provenance and prints the output relations with their recovered
    tags.  [scallop compile FILE] dumps the compiled SclRam program, and
    [scallop repl] provides an interactive toplevel where each line is
    either an item to add or a query to evaluate. *)

open Cmdliner
open Scallop_core

let provenance_conv =
  let parse s =
    match Registry.spec_of_string s with
    | Some spec -> Ok spec
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown provenance %S (available: %s)" s
               (String.concat ", " Registry.all_names)))
  in
  let print fmt spec = Fmt.string fmt (Provenance.name (Registry.create spec)) in
  Arg.conv (parse, print)

let provenance_arg =
  Arg.(
    value
    & opt provenance_conv Registry.Boolean
    & info [ "p"; "provenance" ] ~docv:"PROVENANCE"
        ~doc:"Provenance to execute under (e.g. boolean, minmaxprob, difftopkproofs-3).")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scallop source file.")

let files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE" ~doc:"Scallop source file(s); several files run as one batch.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute over $(docv) domains via the worker pool (0 = one per core). With \
           several FILEs the programs run in parallel; outputs are printed in input \
           order and are identical to a sequential run.")

let resolve_jobs jobs = if jobs <= 0 then Scallop_utils.Pool.default_jobs () else jobs

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for samplers.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile"; "stats" ]
        ~doc:"Collect execution statistics and print a per-RAM-node profile after the outputs.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable reuse of join indices across fixpoint iterations.")

let columnar_arg =
  Arg.(
    value & flag
    & info [ "columnar" ]
        ~doc:
          "Execute strata with the columnar batch engine (struct-of-arrays relations, \
           vectorized operators); plan nodes it does not cover (samplers, foreign \
           predicates) fall back to the tree-walker. Results are identical to the \
           default engine.")

let no_wmc_cache_arg =
  Arg.(
    value & flag
    & info [ "no-wmc-cache" ]
        ~doc:
          "Disable the cross-iteration weighted-model-counting cache used when recovering \
           probabilities from top-k proof provenances (BDDs and counted results are then \
           rebuilt from scratch on every recover call).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget per file, in seconds. A file exceeding it reports a budget \
           error; remaining files still run and the exit status is nonzero at the end.")

let max_tuples_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-tuples" ] ~docv:"N"
        ~doc:"Cap the cumulative number of tuples derived by rule evaluations per file.")

let max_iterations_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-iterations" ] ~docv:"N"
        ~doc:"Cap fixpoint iterations per stratum (default 10000).")

let make_config ?(budget = Budget.default) ?(columnar = false) ~seed ~profile ~no_cache () =
  {
    (Interp.default_config ()) with
    Interp.rng = Scallop_utils.Rng.create seed;
    budget;
    cache_indices = not no_cache;
    columnar;
    stats = (if profile then Some (Interp.empty_stats ()) else None);
  }

(* In_channel.input_all works on pipes too (e.g. [scallop run /dev/stdin]). *)
let read_file path =
  let ic = open_in path in
  let s = In_channel.input_all ic in
  close_in ic;
  s

let loader_for path file =
  let dir = Filename.dirname path in
  let candidate = Filename.concat dir file in
  if Sys.file_exists candidate then Some (read_file candidate) else None

let print_outputs (result : Session.result) =
  List.iter
    (fun (pred, rows) ->
      List.iter
        (fun (t, o) -> Fmt.pr "%a::%s%a@." Provenance.Output.pp o pred Tuple.pp t)
        rows)
    result.Session.outputs

let run_term =
  let run provenance seed profile no_cache columnar no_wmc_cache jobs timeout max_tuples
      max_iterations paths =
    let jobs = resolve_jobs jobs in
    Session.set_wmc_cache (not no_wmc_cache);
    let budget = Budget.make ?timeout ?max_iterations ?max_tuples () in
    (* Compile on the main domain (compilation is cheap and stateful-ish),
       then fan the executions out: each file runs under its own config —
       same seed, fresh profiling sink — so results match a sequential run
       file-for-file regardless of the worker count.  Failures are per file:
       a file that fails to compile, exceeds its budget, or errors at
       runtime is reported on stderr and the remaining files still run; the
       exit status is nonzero iff any file failed. *)
    let compiled =
      Array.of_list
        (List.map
           (fun path ->
             let c =
               try Ok (Session.compile ~load:(loader_for path) (read_file path)) with
               | Session.Error e -> Error e
               | Sys_error msg -> Error (Exec_error.Invalid_input { msg })
             in
             (path, c))
           paths)
    in
    (* Total: errors come back as values, so the pool always drains. *)
    let run_one (_path, c) =
      match c with
      | Error e -> Error e
      | Ok c -> (
          let config = make_config ~budget ~columnar ~seed ~profile ~no_cache () in
          try Ok (c, Session.run ~config ~provenance:(Registry.create provenance) c ())
          with Session.Error e -> Error e)
    in
    let results =
      if jobs > 1 && Array.length compiled > 1 then
        Scallop_utils.Pool.with_pool jobs (fun pool ->
            Scallop_utils.Pool.parallel_map pool ~f:run_one compiled)
      else Array.map run_one compiled
    in
    let failures = ref 0 in
    Array.iteri
      (fun i outcome ->
        let path = fst compiled.(i) in
        if Array.length compiled > 1 then Fmt.pr "=== %s@." path;
        match outcome with
        | Ok (c, result) -> (
            print_outputs result;
            match result.Session.stats with
            | Some stats -> Fmt.pr "%a" (Interp.pp_profile c.Session.plan) stats
            | None -> ())
        | Error e ->
            incr failures;
            Fmt.epr "error: %s: %s@." path (Session.error_string e))
      results;
    if !failures = 0 then `Ok ()
    else
      `Error
        ( false,
          Fmt.str "%d of %d file%s failed" !failures (Array.length compiled)
            (if Array.length compiled = 1 then "" else "s") )
  in
  Term.(
    ret
      (const run $ provenance_arg $ seed_arg $ profile_arg $ no_cache_arg $ columnar_arg
     $ no_wmc_cache_arg $ jobs_arg $ timeout_arg $ max_tuples_arg $ max_iterations_arg
     $ files_arg))

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Execute a Scallop program and print its output relations.") run_term

let compile_cmd =
  let run path =
    try
      let source = read_file path in
      let compiled = Session.compile ~load:(loader_for path) source in
      Fmt.pr "%a" Ram.pp_program compiled.Session.ram;
      `Ok ()
    with Session.Error e -> `Error (false, Session.error_string e)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a Scallop program and dump the SclRam query plan.")
    Term.(ret (const run $ file_arg))

let repl_cmd =
  let run provenance seed profile no_cache columnar no_wmc_cache =
    Session.set_wmc_cache (not no_wmc_cache);
    Fmt.pr "Scallop REPL — enter items (rel/type/const/query); an empty line executes.@.";
    let buffer = Buffer.create 256 in
    (* One RNG for the whole session (repeated executions keep sampling new
       draws); a fresh stats sink per execution so profiles don't accumulate. *)
    let base_config = make_config ~columnar ~seed ~profile ~no_cache () in
    let rec loop () =
      Fmt.pr "scl> %!";
      match In_channel.input_line stdin with
      | None -> ()
      | Some "" ->
          (try
             let config =
               if profile then { base_config with Interp.stats = Some (Interp.empty_stats ()) }
               else base_config
             in
             let compiled = Session.compile (Buffer.contents buffer) in
             let result =
               Session.run ~config ~provenance:(Registry.create provenance) compiled ()
             in
             print_outputs result;
             match result.Session.stats with
             | Some stats -> Fmt.pr "%a" (Interp.pp_profile compiled.Session.plan) stats
             | None -> ()
           with Session.Error e -> Fmt.epr "error: %s@." (Session.error_string e));
          loop ()
      | Some line ->
          Buffer.add_string buffer line;
          Buffer.add_char buffer '\n';
          loop ()
    in
    loop ();
    `Ok ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive toplevel: accumulate items, execute on empty line.")
    Term.(
      ret
        (const run $ provenance_arg $ seed_arg $ profile_arg $ no_cache_arg $ columnar_arg
       $ no_wmc_cache_arg))

(* ---- [scallop serve]: the supervised inference service over stdio ------------ *)

(* Fact atoms for the stateful verbs: "0.9::edge(0, 1)" or "edge(0, 1)".
   Values: true/false, integers (i32), floats (f64), "quoted" or bare
   strings; [Incr] coerces them to the relation's declared column types. *)
let parse_serve_value (s : string) : Value.t =
  let s = String.trim s in
  if String.equal s "true" then Value.bool true
  else if String.equal s "false" then Value.bool false
  else
    match int_of_string_opt s with
    | Some n -> Value.int Value.I32 n
    | None -> (
        match float_of_string_opt s with
        | Some f -> Value.float Value.F64 f
        | None ->
            let n = String.length s in
            if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
              Value.string (String.sub s 1 (n - 2))
            else Value.string s)

let parse_fact_atom (s : string) : float option * string * Tuple.t =
  let s = String.trim s in
  let prob, rest =
    match String.index_opt s ':' with
    | Some i when i + 1 < String.length s && s.[i + 1] = ':' -> (
        let p = String.sub s 0 i in
        match float_of_string_opt p with
        | Some f -> (Some f, String.sub s (i + 2) (String.length s - i - 2))
        | None -> Session.invalid_input "bad probability %S in fact %S" p s)
    | _ -> (None, s)
  in
  let n = String.length rest in
  match String.index_opt rest '(' with
  | None -> Session.invalid_input "bad fact %S: expected pred(v1, ...)" s
  | Some _ when n = 0 || rest.[n - 1] <> ')' ->
      Session.invalid_input "bad fact %S: missing closing paren" s
  | Some l ->
      let pred = String.trim (String.sub rest 0 l) in
      if String.equal pred "" then Session.invalid_input "bad fact %S: empty predicate" s;
      let inner = String.sub rest (l + 1) (n - l - 2) in
      let vals =
        if String.trim inner = "" then []
        else List.map parse_serve_value (String.split_on_char ',' inner)
      in
      (prob, pred, Tuple.of_list vals)

(* The k-th-token-onward suffix of a protocol line (verbs keep raw text —
   programs and fact atoms contain spaces). *)
let drop_tokens k s =
  let n = String.length s in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec skip_tok i = if i < n && s.[i] <> ' ' then skip_tok (i + 1) else i in
  let rec go k i = if k = 0 then i else go (k - 1) (skip_ws (skip_tok i)) in
  let i = go k (skip_ws 0) in
  String.sub s i (n - i)

let serve_cmd =
  let module Service = Scallop_serve.Service in
  let module Chaos = Scallop_serve.Chaos in
  let module Incr = Scallop_incr.Incr in
  let module Durable = Scallop_incr.Durable in
  let queue_depth_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission limit: requests waiting beyond $(docv) are shed immediately with a \
             typed 'overloaded' reply instead of queueing unboundedly.")
  in
  let request_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SEC"
          ~doc:
            "Per-request deadline from submission, in seconds; queue wait, retries and \
             injected stalls all consume it.")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Transient-failure retries per request (worker lost, poisoned numerics), with \
             capped jittered exponential backoff.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Seed of the fault-injection decision streams (reproducible chaos).")
  in
  let prob_arg name doc = Arg.(value & opt float 0.0 & info [ name ] ~docv:"PROB" ~doc) in
  let chaos_kill_arg = prob_arg "chaos-kill" "Probability an attempt kills its worker domain." in
  let chaos_latency_arg =
    prob_arg "chaos-latency" "Probability an attempt stalls without heartbeating."
  in
  let chaos_latency_secs_arg =
    Arg.(
      value & opt float 0.05
      & info [ "chaos-latency-secs" ] ~docv:"SEC" ~doc:"Injected stall duration, seconds.")
  in
  let chaos_budget_arg =
    prob_arg "chaos-budget" "Probability an attempt reports a synthetic budget fault."
  in
  let chaos_nan_arg =
    prob_arg "chaos-nan" "Probability a result's output probabilities are NaN-poisoned."
  in
  let base_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE"
        ~doc:"Optional base program prefixed to every request (types, rules, data).")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durable session state: every open/assert/retract/close is write-ahead logged \
             under $(docv) before it is applied, with periodic compacted snapshots. On \
             startup, sessions found in $(docv) are recovered (snapshot + bounded replay) \
             and answer queries bit-identically to an uncrashed service. Without this \
             flag, session state is in-memory only.")
  in
  let max_live_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-live-sessions" ] ~docv:"N"
          ~doc:
            "LRU cap on hydrated sessions (requires $(b,--state-dir)): beyond $(docv), the \
             least-recently-used idle session is spilled to disk and transparently \
             rehydrated on its next touch.")
  in
  let session_ttl_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "session-ttl" ] ~docv:"SEC"
          ~doc:
            "Idle TTL (requires $(b,--state-dir)): sessions untouched for $(docv) seconds \
             are spilled to disk.")
  in
  let snapshot_every_arg =
    Arg.(
      value & opt int 64
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Ops between compaction snapshots of a durable session; recovery replay is \
             bounded by this.")
  in
  let no_wal_sync_arg =
    Arg.(
      value & flag
      & info [ "no-wal-sync" ]
          ~doc:
            "Skip the per-append fsync. Acknowledged ops then survive a process kill but \
             not a power loss.")
  in
  let run provenance seed jobs queue_depth request_timeout max_retries chaos_seed chaos_kill
      chaos_latency chaos_latency_secs chaos_budget chaos_nan state_dir max_live session_ttl
      snapshot_every no_wal_sync base =
    let base_src = match base with None -> "" | Some path -> read_file path ^ "\n" in
    let chaos =
      {
        Chaos.kill_prob = chaos_kill;
        latency_prob = chaos_latency;
        latency = chaos_latency_secs;
        budget_fault_prob = chaos_budget;
        nan_prob = chaos_nan;
        seed = chaos_seed;
      }
    in
    let config =
      {
        (Service.default_config ()) with
        Service.jobs = resolve_jobs jobs;
        queue_depth;
        request_timeout;
        max_retries;
        interp = make_config ~seed ~profile:false ~no_cache:false ();
        chaos;
      }
    in
    let svc = Service.create ~config provenance in
    let dmgr =
      Durable.create
        (Durable.config ?state_dir ?max_live ?idle_ttl:session_ttl ~snapshot_every
           ~wal_sync:(not no_wal_sync) ~interp:config.Service.interp provenance)
    in
    (* Protocol: one request per stdin line ([;] separates items within a
       line).  Replies stream on stdout in request order: zero or more
       [out <id> ...] rows, then exactly one [done <id> ok|error ...] status
       line per request.  Per-request failures are replies, not a process
       failure: the exit status is 0 as long as the service answered.

       A line starting with a stateful verb drives an incremental session
       instead of a one-shot query:

         open <sid> [hash=<hex>] <program>   compile (shared plan cache) + open
         assert <sid> [<prob>::]<pred>(<args>)
         retract <sid> <pred>(<args>)
         query <sid> [<rel> ...]             rows + done, via the worker pool
         close <sid>
         stats                               plan-cache / WMC / session counters

       Updates apply in line order (strictly serialized against the
       session's in-flight queries); anything else is the legacy one-shot
       path. *)
    (* In-flight query tickets per session.  The session registry itself —
       including recovery from --state-dir, WAL-before-apply commit, and
       idle eviction — lives in [Durable]. *)
    let tickets : (string, Service.ticket list ref) Hashtbl.t = Hashtbl.create 8 in
    let pmutex = Mutex.create () in
    let pcond = Condition.create () in
    let pending = Queue.create () in
    let eof = ref false in
    let printer =
      Domain.spawn (fun () ->
          let rec loop () =
            Mutex.lock pmutex;
            while Queue.is_empty pending && not !eof do
              Condition.wait pcond pmutex
            done;
            let item = if Queue.is_empty pending then None else Some (Queue.pop pending) in
            Mutex.unlock pmutex;
            match item with
            | None -> ()
            | Some (n, reply) ->
                (match reply with
                | `Err e -> Fmt.pr "done %d error compile %s@." n (Session.error_string e)
                | `Lines lines -> List.iter (fun l -> Fmt.pr "%s@." l) lines
                | `Ticket ticket -> (
                    let o = Service.await svc ticket in
                    let rung = Registry.spec_name o.Service.rung in
                    let ms = 1000.0 *. o.Service.latency in
                    match o.Service.response with
                    | Ok result ->
                        List.iter
                          (fun (pred, rows) ->
                            List.iter
                              (fun (t, tag) ->
                                Fmt.pr "out %d %a::%s%a@." n Provenance.Output.pp tag pred
                                  Tuple.pp t)
                              rows)
                          result.Session.outputs;
                        Fmt.pr "done %d ok rung=%s attempts=%d ms=%.1f@." n rung
                          o.Service.attempts ms
                    | Error e ->
                        Fmt.pr "done %d error rung=%s attempts=%d %s@." n rung
                          o.Service.attempts (Session.error_string e)));
                loop ()
          in
          loop ();
          Fmt.pr "%!")
    in
    let push n reply =
      Mutex.lock pmutex;
      Queue.push (n, reply) pending;
      Condition.signal pcond;
      Mutex.unlock pmutex
    in
    (* Run a verb; protocol misuse surfaces as a typed Invalid_input reply. *)
    let verb n f =
      push n
        (try f ()
         with Session.Error e -> `Lines [ Fmt.str "done %d error %s" n (Session.error_string e) ])
    in
    let lookup sid =
      if not (Durable.exists dmgr ~sid) then Session.invalid_input "unknown session %s" sid
    in
    let pending_of sid =
      match Hashtbl.find_opt tickets sid with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add tickets sid r;
          r
    in
    (* Serialize updates and close against ALL of the session's in-flight
       queries, so a later assert can never be observed by an earlier query
       executing on a worker domain.  Awaiting only the most recent ticket
       is not enough: with two or more workers, two queries on the same
       session can execute concurrently, and a close that awaited just the
       newer one could tear the session down under the older — which then
       failed spuriously with "session is closed". *)
    let drain sid =
      let r = pending_of sid in
      List.iter (fun tk -> ignore (Service.await svc tk)) (List.rev !r);
      r := []
    in
    let unquote line = String.map (fun c -> if c = ';' then '\n' else c) line in
    let reqno = ref 0 in
    let rec read_loop () =
      match In_channel.input_line stdin with
      | None -> ()
      | Some line when String.trim line = "" -> read_loop ()
      | Some line ->
          let n = !reqno in
          incr reqno;
          let words =
            String.split_on_char ' ' (String.trim line)
            |> List.filter (fun w -> not (String.equal w ""))
          in
          (match words with
          | "open" :: sid :: _ ->
              verb n (fun () ->
                  let rest = String.trim (drop_tokens 2 line) in
                  let expect_hash, prog =
                    if String.length rest >= 5 && String.equal (String.sub rest 0 5) "hash="
                    then
                      let i =
                        match String.index_opt rest ' ' with
                        | Some i -> i
                        | None -> String.length rest
                      in
                      ( Some (String.sub rest 5 (i - 5)),
                        String.sub rest i (String.length rest - i) )
                    else (None, rest)
                  in
                  let hash, exact =
                    Durable.open_session dmgr ~sid ?expect_hash (base_src ^ unquote prog)
                  in
                  `Lines
                    [
                      Fmt.str "done %d ok opened %s hash=%s engine=%s" n sid hash
                        (if exact then "delta" else "recompute");
                    ])
          | "assert" :: sid :: _ ->
              verb n (fun () ->
                  lookup sid;
                  drain sid;
                  let prob, pred, tuple = parse_fact_atom (drop_tokens 2 line) in
                  Durable.assert_fact dmgr ~sid ~pred ?prob tuple;
                  `Lines [ Fmt.str "done %d ok asserted %s" n sid ])
          | "retract" :: sid :: _ ->
              verb n (fun () ->
                  lookup sid;
                  drain sid;
                  let prob, pred, tuple = parse_fact_atom (drop_tokens 2 line) in
                  (match prob with
                  | Some _ -> Session.invalid_input "retract takes no probability"
                  | None -> ());
                  Durable.retract_fact dmgr ~sid ~pred tuple;
                  `Lines [ Fmt.str "done %d ok retracted %s" n sid ])
          | "query" :: sid :: rest ->
              verb n (fun () ->
                  lookup sid;
                  let outputs = match rest with [] -> None | l -> Some l in
                  let tk =
                    Service.submit_exec svc (fun ~rung:_ ~config ->
                        Durable.query ?outputs ~budget:config.Interp.budget dmgr ~sid ())
                  in
                  let r = pending_of sid in
                  r := tk :: List.filter (fun t -> Service.poll svc t = None) !r;
                  `Ticket tk)
          | [ "close"; sid ] ->
              verb n (fun () ->
                  lookup sid;
                  drain sid;
                  let st = Durable.close dmgr ~sid in
                  `Lines
                    [
                      Fmt.str "out %d session %s %a" n sid Incr.pp_session_stats st;
                      Fmt.str "done %d ok closed %s" n sid;
                    ])
          | [ "stats" ] ->
              verb n (fun () ->
                  let pc = Session.plan_cache_stats () in
                  let wc = Wmc.cache_stats () in
                  let c = Durable.session_counts dmgr in
                  let open_sessions = c.Durable.live + c.Durable.spilled + c.Durable.failed in
                  `Lines
                    ([
                       Fmt.str "out %d plan-cache hits=%d misses=%d evictions=%d entries=%d"
                         n pc.Session.hits pc.Session.misses pc.Session.evictions
                         pc.Session.entries;
                       Fmt.str
                         "out %d wmc bdd-hits=%d bdd-misses=%d result-hits=%d \
                          result-misses=%d resets=%d nodes=%d"
                         n wc.Wmc.bdd_hits wc.Wmc.bdd_misses wc.Wmc.result_hits
                         wc.Wmc.result_misses wc.Wmc.resets wc.Wmc.manager_nodes;
                       Fmt.str "out %d sessions open=%d" n open_sessions;
                     ]
                    @ (match state_dir with
                      | None -> []
                      | Some _ ->
                          [
                            Fmt.str "out %d durability %a live=%d spilled=%d failed=%d" n
                              Durable.pp_stats (Durable.stats dmgr) c.Durable.live
                              c.Durable.spilled c.Durable.failed;
                          ])
                    @ [ Fmt.str "done %d ok stats" n ]))
          | _ ->
              push n
                (match Session.compile (base_src ^ unquote line) with
                | compiled -> `Ticket (Service.submit svc compiled)
                | exception Session.Error e -> `Err e));
          read_loop ()
    in
    read_loop ();
    Mutex.lock pmutex;
    eof := true;
    Condition.broadcast pcond;
    Mutex.unlock pmutex;
    Domain.join printer;
    Service.shutdown svc;
    Durable.shutdown dmgr;
    Fmt.epr "service: %a@." Service.pp_stats (Service.stats svc);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived query service: newline-delimited requests on stdin, per-request status \
          lines on stdout, with admission control, retry, circuit-broken degradation and a \
          supervised worker pool.")
    Term.(
      ret
        (const run $ provenance_arg $ seed_arg $ jobs_arg $ queue_depth_arg
       $ request_timeout_arg $ max_retries_arg $ chaos_seed_arg $ chaos_kill_arg
       $ chaos_latency_arg $ chaos_latency_secs_arg $ chaos_budget_arg $ chaos_nan_arg
       $ state_dir_arg $ max_live_arg $ session_ttl_arg $ snapshot_every_arg
       $ no_wal_sync_arg $ base_arg))

let main_cmd =
  (* [run] is the default command, so [scallop --profile FILE] works without
     spelling out [run]. *)
  Cmd.group ~default:run_term
    (Cmd.info "scallop" ~version:"1.0.0"
       ~doc:"Scallop: a language for neurosymbolic programming (OCaml reproduction).")
    [ run_cmd; compile_cmd; repl_cmd; serve_cmd ]

let () = exit (Cmd.eval main_cmd)
