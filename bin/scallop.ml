(** The Scallop interpreter CLI (the [scli] role of paper Sec. 5).

    [scallop run FILE] parses, compiles and executes a .scl file under a
    chosen provenance and prints the output relations with their recovered
    tags.  [scallop compile FILE] dumps the compiled SclRam program, and
    [scallop repl] provides an interactive toplevel where each line is
    either an item to add or a query to evaluate. *)

open Cmdliner
open Scallop_core

let provenance_conv =
  let parse s =
    match Registry.spec_of_string s with
    | Some spec -> Ok spec
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown provenance %S (available: %s)" s
               (String.concat ", " Registry.all_names)))
  in
  let print fmt spec = Fmt.string fmt (Provenance.name (Registry.create spec)) in
  Arg.conv (parse, print)

let provenance_arg =
  Arg.(
    value
    & opt provenance_conv Registry.Boolean
    & info [ "p"; "provenance" ] ~docv:"PROVENANCE"
        ~doc:"Provenance to execute under (e.g. boolean, minmaxprob, difftopkproofs-3).")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scallop source file.")

let files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE" ~doc:"Scallop source file(s); several files run as one batch.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute over $(docv) domains via the worker pool (0 = one per core). With \
           several FILEs the programs run in parallel; outputs are printed in input \
           order and are identical to a sequential run.")

let resolve_jobs jobs = if jobs <= 0 then Scallop_utils.Pool.default_jobs () else jobs

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for samplers.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile"; "stats" ]
        ~doc:"Collect execution statistics and print a per-RAM-node profile after the outputs.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable reuse of join indices across fixpoint iterations.")

let columnar_arg =
  Arg.(
    value & flag
    & info [ "columnar" ]
        ~doc:
          "Execute strata with the columnar batch engine (struct-of-arrays relations, \
           vectorized operators); plan nodes it does not cover (samplers, foreign \
           predicates) fall back to the tree-walker. Results are identical to the \
           default engine.")

let no_wmc_cache_arg =
  Arg.(
    value & flag
    & info [ "no-wmc-cache" ]
        ~doc:
          "Disable the cross-iteration weighted-model-counting cache used when recovering \
           probabilities from top-k proof provenances (BDDs and counted results are then \
           rebuilt from scratch on every recover call).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget per file, in seconds. A file exceeding it reports a budget \
           error; remaining files still run and the exit status is nonzero at the end.")

let max_tuples_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-tuples" ] ~docv:"N"
        ~doc:"Cap the cumulative number of tuples derived by rule evaluations per file.")

let max_iterations_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-iterations" ] ~docv:"N"
        ~doc:"Cap fixpoint iterations per stratum (default 10000).")

let make_config ?(budget = Budget.default) ?(columnar = false) ~seed ~profile ~no_cache () =
  {
    (Interp.default_config ()) with
    Interp.rng = Scallop_utils.Rng.create seed;
    budget;
    cache_indices = not no_cache;
    columnar;
    stats = (if profile then Some (Interp.empty_stats ()) else None);
  }

(* In_channel.input_all works on pipes too (e.g. [scallop run /dev/stdin]). *)
let read_file path =
  let ic = open_in path in
  let s = In_channel.input_all ic in
  close_in ic;
  s

let loader_for path file =
  let dir = Filename.dirname path in
  let candidate = Filename.concat dir file in
  if Sys.file_exists candidate then Some (read_file candidate) else None

let print_outputs (result : Session.result) =
  List.iter
    (fun (pred, rows) ->
      List.iter
        (fun (t, o) -> Fmt.pr "%a::%s%a@." Provenance.Output.pp o pred Tuple.pp t)
        rows)
    result.Session.outputs

let run_term =
  let run provenance seed profile no_cache columnar no_wmc_cache jobs timeout max_tuples
      max_iterations paths =
    let jobs = resolve_jobs jobs in
    Session.set_wmc_cache (not no_wmc_cache);
    let budget = Budget.make ?timeout ?max_iterations ?max_tuples () in
    (* Compile on the main domain (compilation is cheap and stateful-ish),
       then fan the executions out: each file runs under its own config —
       same seed, fresh profiling sink — so results match a sequential run
       file-for-file regardless of the worker count.  Failures are per file:
       a file that fails to compile, exceeds its budget, or errors at
       runtime is reported on stderr and the remaining files still run; the
       exit status is nonzero iff any file failed. *)
    let compiled =
      Array.of_list
        (List.map
           (fun path ->
             let c =
               try Ok (Session.compile ~load:(loader_for path) (read_file path)) with
               | Session.Error e -> Error e
               | Sys_error msg -> Error (Exec_error.Invalid_input { msg })
             in
             (path, c))
           paths)
    in
    (* Total: errors come back as values, so the pool always drains. *)
    let run_one (_path, c) =
      match c with
      | Error e -> Error e
      | Ok c -> (
          let config = make_config ~budget ~columnar ~seed ~profile ~no_cache () in
          try Ok (c, Session.run ~config ~provenance:(Registry.create provenance) c ())
          with Session.Error e -> Error e)
    in
    let results =
      if jobs > 1 && Array.length compiled > 1 then
        Scallop_utils.Pool.with_pool jobs (fun pool ->
            Scallop_utils.Pool.parallel_map pool ~f:run_one compiled)
      else Array.map run_one compiled
    in
    let failures = ref 0 in
    Array.iteri
      (fun i outcome ->
        let path = fst compiled.(i) in
        if Array.length compiled > 1 then Fmt.pr "=== %s@." path;
        match outcome with
        | Ok (c, result) -> (
            print_outputs result;
            match result.Session.stats with
            | Some stats -> Fmt.pr "%a" (Interp.pp_profile c.Session.plan) stats
            | None -> ())
        | Error e ->
            incr failures;
            Fmt.epr "error: %s: %s@." path (Session.error_string e))
      results;
    if !failures = 0 then `Ok ()
    else
      `Error
        ( false,
          Fmt.str "%d of %d file%s failed" !failures (Array.length compiled)
            (if Array.length compiled = 1 then "" else "s") )
  in
  Term.(
    ret
      (const run $ provenance_arg $ seed_arg $ profile_arg $ no_cache_arg $ columnar_arg
     $ no_wmc_cache_arg $ jobs_arg $ timeout_arg $ max_tuples_arg $ max_iterations_arg
     $ files_arg))

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Execute a Scallop program and print its output relations.") run_term

let compile_cmd =
  let run path =
    try
      let source = read_file path in
      let compiled = Session.compile ~load:(loader_for path) source in
      Fmt.pr "%a" Ram.pp_program compiled.Session.ram;
      `Ok ()
    with Session.Error e -> `Error (false, Session.error_string e)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a Scallop program and dump the SclRam query plan.")
    Term.(ret (const run $ file_arg))

let repl_cmd =
  let run provenance seed profile no_cache columnar no_wmc_cache =
    Session.set_wmc_cache (not no_wmc_cache);
    Fmt.pr "Scallop REPL — enter items (rel/type/const/query); an empty line executes.@.";
    let buffer = Buffer.create 256 in
    (* One RNG for the whole session (repeated executions keep sampling new
       draws); a fresh stats sink per execution so profiles don't accumulate. *)
    let base_config = make_config ~columnar ~seed ~profile ~no_cache () in
    let rec loop () =
      Fmt.pr "scl> %!";
      match In_channel.input_line stdin with
      | None -> ()
      | Some "" ->
          (try
             let config =
               if profile then { base_config with Interp.stats = Some (Interp.empty_stats ()) }
               else base_config
             in
             let compiled = Session.compile (Buffer.contents buffer) in
             let result =
               Session.run ~config ~provenance:(Registry.create provenance) compiled ()
             in
             print_outputs result;
             match result.Session.stats with
             | Some stats -> Fmt.pr "%a" (Interp.pp_profile compiled.Session.plan) stats
             | None -> ()
           with Session.Error e -> Fmt.epr "error: %s@." (Session.error_string e));
          loop ()
      | Some line ->
          Buffer.add_string buffer line;
          Buffer.add_char buffer '\n';
          loop ()
    in
    loop ();
    `Ok ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive toplevel: accumulate items, execute on empty line.")
    Term.(
      ret
        (const run $ provenance_arg $ seed_arg $ profile_arg $ no_cache_arg $ columnar_arg
       $ no_wmc_cache_arg))

(* ---- [scallop serve]: the supervised inference service over stdio ------------ *)

(* Bounded line reader: a line longer than [max] bytes is consumed up to
   its newline but only [max] bytes are kept and the overflow is flagged,
   so the serving loop answers with a typed error instead of buffering an
   unbounded request in memory. *)
let input_line_bounded ic max : (string * bool) option =
  let b = Buffer.create 128 in
  let rec go truncated =
    match In_channel.input_char ic with
    | None ->
        if Buffer.length b = 0 && not truncated then None
        else Some (Buffer.contents b, truncated)
    | Some '\n' -> Some (Buffer.contents b, truncated)
    | Some c ->
        if Buffer.length b >= max then go true
        else begin
          Buffer.add_char b c;
          go truncated
        end
  in
  go false

let serve_cmd =
  let module Service = Scallop_serve.Service in
  let module Chaos = Scallop_serve.Chaos in
  let module Protocol = Scallop_serve.Protocol in
  let module Incr = Scallop_incr.Incr in
  let module Durable = Scallop_incr.Durable in
  let module Replica = Scallop_incr.Replica in
  let queue_depth_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission limit: requests waiting beyond $(docv) are shed immediately with a \
             typed 'overloaded' reply instead of queueing unboundedly.")
  in
  let request_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SEC"
          ~doc:
            "Per-request deadline from submission, in seconds; queue wait, retries and \
             injected stalls all consume it.")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Transient-failure retries per request (worker lost, poisoned numerics), with \
             capped jittered exponential backoff.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Seed of the fault-injection decision streams (reproducible chaos).")
  in
  let prob_arg name doc = Arg.(value & opt float 0.0 & info [ name ] ~docv:"PROB" ~doc) in
  let chaos_kill_arg = prob_arg "chaos-kill" "Probability an attempt kills its worker domain." in
  let chaos_latency_arg =
    prob_arg "chaos-latency" "Probability an attempt stalls without heartbeating."
  in
  let chaos_latency_secs_arg =
    Arg.(
      value & opt float 0.05
      & info [ "chaos-latency-secs" ] ~docv:"SEC" ~doc:"Injected stall duration, seconds.")
  in
  let chaos_budget_arg =
    prob_arg "chaos-budget" "Probability an attempt reports a synthetic budget fault."
  in
  let chaos_nan_arg =
    prob_arg "chaos-nan" "Probability a result's output probabilities are NaN-poisoned."
  in
  let base_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE"
        ~doc:"Optional base program prefixed to every request (types, rules, data).")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durable session state: every open/assert/retract/close is write-ahead logged \
             under $(docv) before it is applied, with periodic compacted snapshots. On \
             startup, sessions found in $(docv) are recovered (snapshot + bounded replay) \
             and answer queries bit-identically to an uncrashed service. Without this \
             flag, session state is in-memory only.")
  in
  let max_live_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-live-sessions" ] ~docv:"N"
          ~doc:
            "LRU cap on hydrated sessions (requires $(b,--state-dir)): beyond $(docv), the \
             least-recently-used idle session is spilled to disk and transparently \
             rehydrated on its next touch.")
  in
  let session_ttl_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "session-ttl" ] ~docv:"SEC"
          ~doc:
            "Idle TTL (requires $(b,--state-dir)): sessions untouched for $(docv) seconds \
             are spilled to disk.")
  in
  let snapshot_every_arg =
    Arg.(
      value & opt int 64
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Ops between compaction snapshots of a durable session; recovery replay is \
             bounded by this.")
  in
  let no_wal_sync_arg =
    Arg.(
      value & flag
      & info [ "no-wal-sync" ]
          ~doc:
            "Skip the per-append fsync. Acknowledged ops then survive a process kill but \
             not a power loss.")
  in
  let no_group_commit_arg =
    Arg.(
      value & flag
      & info [ "no-group-commit" ]
          ~doc:
            "Disable WAL group commit. By default concurrent sessions' synchronous WAL \
             appends share fsyncs (a leader flushes every dirty log once per batch); this \
             flag restores one fsync per append. No effect under $(b,--no-wal-sync).")
  in
  let repl_ship_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repl-ship" ] ~docv:"DIR"
          ~doc:
            "Primary role: stream every durable session update as checksummed frames into \
             the ship log under $(docv), for follower processes to replay into warm \
             standbys. Requires $(b,--state-dir).")
  in
  let repl_follow_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repl-follow" ] ~docv:"DIR"
          ~doc:
            "Follower role: tail the ship log under $(docv), replaying frames into standby \
             sessions (queries allowed; writes refused until $(b,repl promote)). Requires \
             $(b,--state-dir).")
  in
  let repl_id_arg =
    Arg.(
      value & opt string "node"
      & info [ "repl-id" ] ~docv:"NAME"
          ~doc:"This node's replication identity (names its epoch claims and ack log).")
  in
  let repl_ack_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Scallop_incr.Replica.Ack_none);
               ("async", Scallop_incr.Replica.Ack_async);
               ("quorum", Scallop_incr.Replica.Ack_quorum);
             ])
          Scallop_incr.Replica.Ack_async
      & info [ "repl-ack" ] ~docv:"MODE"
          ~doc:
            "Acknowledgement discipline of a primary: $(b,none) ships without looking \
             back, $(b,async) ships and tracks follower lag without blocking, \
             $(b,quorum) blocks each write until a majority of $(b,--repl-followers) \
             followers have fsynced it.")
  in
  let repl_followers_arg =
    Arg.(
      value & opt int 1
      & info [ "repl-followers" ] ~docv:"N"
          ~doc:"Cluster follower count quorum acknowledgement is computed against (N/2+1).")
  in
  let repl_ack_timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "repl-ack-timeout" ] ~docv:"SEC"
          ~doc:
            "Quorum wait deadline per write; expiry yields a typed ack-timeout error (the \
             write is locally durable but its replication level is unknown).")
  in
  let repl_segment_frames_arg =
    Arg.(
      value & opt int 4096
      & info [ "repl-segment-frames" ] ~docv:"N"
          ~doc:
            "Rotate the ship log every $(docv) frames; each new segment opens with \
             snapshots of every live session, bounding follower catch-up.")
  in
  let repl_retain_arg =
    Arg.(
      value & opt int 2
      & info [ "repl-retain" ] ~docv:"N"
          ~doc:"Rotated ship segments kept behind the active one before pruning.")
  in
  let repl_auto_promote_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "repl-auto-promote" ] ~docv:"SEC"
          ~doc:
            "Supervised failover: a follower that sees no primary heartbeat for $(docv) \
             seconds promotes itself (claims the next fencing epoch and starts accepting \
             writes). Without this flag promotion is manual via $(b,repl promote).")
  in
  let max_line_bytes_arg =
    Arg.(
      value & opt int 1048576
      & info [ "max-line-bytes" ] ~docv:"N"
          ~doc:
            "Reject protocol lines longer than $(docv) bytes with a typed error instead \
             of buffering them.")
  in
  let run provenance seed jobs queue_depth request_timeout max_retries chaos_seed chaos_kill
      chaos_latency chaos_latency_secs chaos_budget chaos_nan state_dir max_live session_ttl
      snapshot_every no_wal_sync no_group_commit repl_ship repl_follow repl_id repl_ack
      repl_followers repl_ack_timeout repl_segment_frames repl_retain repl_auto_promote
      max_line_bytes base =
    let conflict =
      if repl_ship <> None && repl_follow <> None then
        Some "--repl-ship and --repl-follow are mutually exclusive"
      else if (repl_ship <> None || repl_follow <> None) && state_dir = None then
        Some "replication (--repl-ship / --repl-follow) requires --state-dir"
      else None
    in
    match conflict with
    | Some msg -> `Error (false, msg)
    | None ->
    let base_src = match base with None -> "" | Some path -> read_file path ^ "\n" in
    let chaos =
      {
        Chaos.kill_prob = chaos_kill;
        latency_prob = chaos_latency;
        latency = chaos_latency_secs;
        budget_fault_prob = chaos_budget;
        nan_prob = chaos_nan;
        seed = chaos_seed;
      }
    in
    let config =
      {
        (Service.default_config ()) with
        Service.jobs = resolve_jobs jobs;
        queue_depth;
        request_timeout;
        max_retries;
        interp = make_config ~seed ~profile:false ~no_cache:false ();
        chaos;
      }
    in
    let svc = Service.create ~config provenance in
    (* Replication roles.  A primary ships every durable update into the
       ship log (via the repl sink wired into [Durable]); a follower's
       registry starts as a standby and a poller domain tails the ship
       log into it. *)
    let primary =
      Option.map
        (fun dir ->
          Replica.Primary.create ~dir ~id:repl_id ~ack:repl_ack ~cluster:repl_followers
            ~ack_timeout:repl_ack_timeout ~segment_frames:repl_segment_frames
            ~retain:repl_retain ())
        repl_ship
    in
    let dmgr =
      Durable.create
        (Durable.config ?state_dir ?max_live ?idle_ttl:session_ttl ~snapshot_every
           ~wal_sync:(not no_wal_sync)
           ~group_commit:(not no_group_commit)
           ?repl:(Option.map Replica.Primary.sink primary)
           ~standby:(repl_follow <> None) ~interp:config.Service.interp provenance)
    in
    (* Sessions recovered from --state-dir join the ship log immediately,
       so a follower attaching now does not wait for the next rotation. *)
    if primary <> None then Durable.ship_barrier dmgr;
    let follower =
      Option.map (fun dir -> Replica.Follower.create ~dir ~fid:repl_id ~mgr:dmgr ()) repl_follow
    in
    let repl_stop = Atomic.make false in
    let heartbeat_domain =
      Option.map
        (fun p ->
          Domain.spawn (fun () ->
              while not (Atomic.get repl_stop) do
                Replica.Primary.heartbeat p;
                Unix.sleepf 0.25
              done))
        primary
    in
    let poller_domain =
      Option.map
        (fun f ->
          Domain.spawn (fun () ->
              let auto_promoted = ref false in
              while not (Atomic.get repl_stop) do
                (try if Replica.Follower.poll f = 0 then Unix.sleepf 0.002
                 with _ -> Unix.sleepf 0.01);
                match repl_auto_promote with
                | Some ttl when not !auto_promoted -> (
                    match Replica.Follower.primary_age f with
                    | Some age when age > ttl ->
                        (try
                           let e = Replica.Follower.promote f in
                           Fmt.epr "repl: primary heartbeat stale (%.1fs); promoted to epoch %d@." age
                             e
                         with Session.Error _ -> () (* promoted by hand already *));
                        auto_promoted := true
                    | _ -> ())
                | _ -> ()
              done))
        follower
    in
    (* Protocol: one request per stdin line ([;] separates items within a
       line).  Replies stream on stdout in request order: zero or more
       [out <id> ...] rows, then exactly one [done <id> ok|error ...] status
       line per request.  Per-request failures are replies, not a process
       failure: the exit status is 0 as long as the service answered.

       A line starting with a stateful verb drives an incremental session
       instead of a one-shot query:

         open <sid> [hash=<hex>] <program>   compile (shared plan cache) + open
         assert <sid> [<prob>::]<pred>(<args>)
         retract <sid> <pred>(<args>)
         query <sid> [<rel> ...]             rows + done, via the worker pool
         close <sid>
         stats                               plan-cache / WMC / session counters

       Updates apply in line order (strictly serialized against the
       session's in-flight queries); anything else is the legacy one-shot
       path. *)
    (* In-flight query tickets per session.  The session registry itself —
       including recovery from --state-dir, WAL-before-apply commit, and
       idle eviction — lives in [Durable]. *)
    let tickets : (string, Service.ticket list ref) Hashtbl.t = Hashtbl.create 8 in
    let pmutex = Mutex.create () in
    let pcond = Condition.create () in
    let pending = Queue.create () in
    let eof = ref false in
    let printer =
      Domain.spawn (fun () ->
          let rec loop () =
            Mutex.lock pmutex;
            while Queue.is_empty pending && not !eof do
              Condition.wait pcond pmutex
            done;
            let item = if Queue.is_empty pending then None else Some (Queue.pop pending) in
            Mutex.unlock pmutex;
            match item with
            | None -> ()
            | Some (n, reply) ->
                (match reply with
                | `Err e -> Fmt.pr "done %d error compile %s@." n (Session.error_string e)
                | `Lines lines -> List.iter (fun l -> Fmt.pr "%s@." l) lines
                | `Ticket ticket -> (
                    let o = Service.await svc ticket in
                    let rung = Registry.spec_name o.Service.rung in
                    let ms = 1000.0 *. o.Service.latency in
                    match o.Service.response with
                    | Ok result ->
                        List.iter
                          (fun (pred, rows) ->
                            List.iter
                              (fun (t, tag) ->
                                Fmt.pr "out %d %a::%s%a@." n Provenance.Output.pp tag pred
                                  Tuple.pp t)
                              rows)
                          result.Session.outputs;
                        Fmt.pr "done %d ok rung=%s attempts=%d ms=%.1f@." n rung
                          o.Service.attempts ms
                    | Error e ->
                        Fmt.pr "done %d error rung=%s attempts=%d %s@." n rung
                          o.Service.attempts (Session.error_string e)));
                loop ()
          in
          loop ();
          Fmt.pr "%!")
    in
    let push n reply =
      Mutex.lock pmutex;
      Queue.push (n, reply) pending;
      Condition.signal pcond;
      Mutex.unlock pmutex
    in
    (* Run a verb; protocol misuse surfaces as a typed Invalid_input reply
       and any other exception as a typed runtime error — a request can
       fail, never crash or wedge the service.  Stack_overflow and
       Out_of_memory stay fatal: the process state is suspect. *)
    let verb n f =
      push n
        (try f () with
        | Session.Error e -> `Lines [ Fmt.str "done %d error %s" n (Session.error_string e) ]
        | (Stack_overflow | Out_of_memory) as e -> raise e
        | exn ->
            `Lines
              [
                Fmt.str "done %d error %s" n
                  (Session.error_string
                     (Exec_error.Runtime_error { msg = "internal: " ^ Printexc.to_string exn }));
              ])
    in
    let lookup sid =
      if not (Durable.exists dmgr ~sid) then Session.invalid_input "unknown session %s" sid
    in
    let pending_of sid =
      match Hashtbl.find_opt tickets sid with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add tickets sid r;
          r
    in
    (* Serialize updates and close against ALL of the session's in-flight
       queries, so a later assert can never be observed by an earlier query
       executing on a worker domain.  Awaiting only the most recent ticket
       is not enough: with two or more workers, two queries on the same
       session can execute concurrently, and a close that awaited just the
       newer one could tear the session down under the older — which then
       failed spuriously with "session is closed". *)
    let drain sid =
      let r = pending_of sid in
      List.iter (fun tk -> ignore (Service.await svc tk)) (List.rev !r);
      r := []
    in
    let unquote line = String.map (fun c -> if c = ';' then '\n' else c) line in
    let repl_status_lines n =
      match (primary, follower) with
      | Some p, _ ->
          let s = Replica.Primary.status p in
          Fmt.str
            "out %d repl role=primary id=%s epoch=%d ack=%s seg=%d frames=%d shipped=%d \
             rotations=%d barriers=%d lag-mean-ms=%.3f lag-max-ms=%.3f fenced=%s"
            n repl_id s.Replica.Primary.st_epoch (Replica.ack_mode_string repl_ack) s.st_seg
            s.st_frames s.st_shipped s.st_rotations s.st_barriers s.st_mean_barrier_ms
            s.st_max_barrier_ms
            (match s.st_fenced with Some e -> string_of_int e | None -> "no")
          :: List.map
               (fun (fid, a) ->
                 Fmt.str "out %d repl follower %s epoch=%d seg=%d idx=%d%s" n fid
                   a.Replica.a_epoch a.a_seg a.a_idx
                   (if a.a_fence then " fence" else ""))
               s.st_followers
      | None, Some f ->
          let s = Replica.Follower.status f in
          Fmt.str
            "out %d repl role=%s id=%s epoch=%d seg=%d idx=%d applied=%d skipped=%d \
             installs=%d adoptions=%d seals=%d divergences=%d awaiting=%d primary-age=%s"
            n
            (if s.Replica.Follower.st_promoted then "promoted" else "follower")
            repl_id s.st_epoch s.st_seg s.st_idx s.st_applied s.st_skipped s.st_installs
            s.st_adoptions s.st_seals s.st_divergences s.st_awaiting
            (match s.st_primary_age with Some a -> Fmt.str "%.1fs" a | None -> "none")
          :: ((match s.st_last_error with
              | None -> []
              | Some e -> [ Fmt.str "out %d repl last-error %s" n e ])
             @ List.map
                 (fun (sid, lsn, seg) ->
                   Fmt.str "out %d repl session %s lsn=%d seg=%d" n sid lsn seg)
                 s.st_sessions)
      | None, None -> [ Fmt.str "out %d repl role=none" n ]
    in
    let dispatch n (req : Protocol.request) =
      match req with
      | Protocol.Open { sid; expect_hash; program } ->
          verb n (fun () ->
              let hash, exact =
                Durable.open_session dmgr ~sid ?expect_hash (base_src ^ unquote program)
              in
              `Lines
                [
                  Fmt.str "done %d ok opened %s hash=%s engine=%s" n sid hash
                    (if exact then "delta" else "recompute");
                ])
      | Protocol.Assert { sid; prob; pred; tuple } ->
          verb n (fun () ->
              lookup sid;
              drain sid;
              Durable.assert_fact dmgr ~sid ~pred ?prob tuple;
              `Lines [ Fmt.str "done %d ok asserted %s" n sid ])
      | Protocol.Retract { sid; pred; tuple } ->
          verb n (fun () ->
              lookup sid;
              drain sid;
              Durable.retract_fact dmgr ~sid ~pred tuple;
              `Lines [ Fmt.str "done %d ok retracted %s" n sid ])
      | Protocol.Query { sid; outputs } ->
          verb n (fun () ->
              lookup sid;
              let tk =
                Service.submit_exec svc (fun ~rung:_ ~config ->
                    Durable.query ?outputs ~budget:config.Interp.budget dmgr ~sid ())
              in
              let r = pending_of sid in
              r := tk :: List.filter (fun t -> Service.poll svc t = None) !r;
              `Ticket tk)
      | Protocol.Close { sid } ->
          verb n (fun () ->
              lookup sid;
              drain sid;
              let st = Durable.close dmgr ~sid in
              `Lines
                [
                  Fmt.str "out %d session %s %a" n sid Incr.pp_session_stats st;
                  Fmt.str "done %d ok closed %s" n sid;
                ])
      | Protocol.Stats ->
          verb n (fun () ->
              let pc = Session.plan_cache_stats () in
              let wc = Wmc.cache_stats () in
              let c = Durable.session_counts dmgr in
              let open_sessions = c.Durable.live + c.Durable.spilled + c.Durable.failed in
              `Lines
                ([
                   Fmt.str "out %d plan-cache hits=%d misses=%d evictions=%d entries=%d" n
                     pc.Session.hits pc.Session.misses pc.Session.evictions pc.Session.entries;
                   Fmt.str
                     "out %d wmc bdd-hits=%d bdd-misses=%d result-hits=%d \
                      result-misses=%d resets=%d nodes=%d"
                     n wc.Wmc.bdd_hits wc.Wmc.bdd_misses wc.Wmc.result_hits
                     wc.Wmc.result_misses wc.Wmc.resets wc.Wmc.manager_nodes;
                   Fmt.str "out %d sessions open=%d" n open_sessions;
                 ]
                @ (match state_dir with
                  | None -> []
                  | Some _ ->
                      [
                        Fmt.str "out %d durability %a live=%d spilled=%d failed=%d" n
                          Durable.pp_stats (Durable.stats dmgr) c.Durable.live
                          c.Durable.spilled c.Durable.failed;
                      ])
                @ (match primary with
                  | None -> []
                  | Some p ->
                      let s = Replica.Primary.status p in
                      [
                        Fmt.str
                          "out %d repl role=primary epoch=%d shipped=%d followers=%d \
                           lag-mean-ms=%.3f"
                          n s.Replica.Primary.st_epoch s.st_shipped
                          (List.length s.st_followers) s.st_mean_barrier_ms;
                      ])
                @ (match follower with
                  | None -> []
                  | Some f ->
                      let s = Replica.Follower.status f in
                      [
                        Fmt.str "out %d repl role=%s epoch=%d applied=%d divergences=%d" n
                          (if s.Replica.Follower.st_promoted then "promoted" else "follower")
                          s.st_epoch s.st_applied s.st_divergences;
                      ])
                @ [ Fmt.str "done %d ok stats" n ]))
      | Protocol.Scrub ->
          verb n (fun () ->
              let reports = Durable.scrub dmgr in
              let lines =
                List.concat_map
                  (fun r ->
                    Fmt.str "out %d scrub %s snapshots=%d segments=%d errors=%d" n
                      r.Durable.sc_sid r.Durable.sc_snapshots r.Durable.sc_segments
                      (List.length r.Durable.sc_errors)
                    :: List.map
                         (fun e -> Fmt.str "out %d scrub %s ! %s" n r.Durable.sc_sid e)
                         r.Durable.sc_errors)
                  reports
              in
              let bad =
                List.fold_left (fun acc r -> acc + List.length r.Durable.sc_errors) 0 reports
              in
              `Lines
                (lines
                @ [
                    Fmt.str "done %d ok scrub sessions=%d errors=%d" n (List.length reports)
                      bad;
                  ]))
      | Protocol.Repl_status ->
          verb n (fun () -> `Lines (repl_status_lines n @ [ Fmt.str "done %d ok repl" n ]))
      | Protocol.Repl_promote { epoch } ->
          verb n (fun () ->
              match follower with
              | None -> Session.invalid_input "repl promote: this node is not a follower"
              | Some f ->
                  let e = Replica.Follower.promote ?epoch f in
                  `Lines [ Fmt.str "done %d ok promoted epoch=%d" n e ])
      | Protocol.Run { program } ->
          push n
            (match Session.compile (base_src ^ unquote program) with
            | compiled -> `Ticket (Service.submit svc compiled)
            | exception Session.Error e -> `Err e)
    in
    let reqno = ref 0 in
    let rec read_loop () =
      match input_line_bounded stdin max_line_bytes with
      | None -> ()
      | Some (line, false) when String.trim line = "" -> read_loop ()
      | Some (line, truncated) ->
          let n = !reqno in
          incr reqno;
          (let outcome =
             if truncated then
               Error
                 (Exec_error.Invalid_input
                    {
                      msg =
                        Fmt.str "request line exceeds the %d-byte limit; discarded"
                          max_line_bytes;
                    })
             else Protocol.parse ~max_line:max_line_bytes line
           in
           match outcome with
           | Error e -> push n (`Lines [ Fmt.str "done %d error %s" n (Session.error_string e) ])
           | Ok req -> dispatch n req);
          read_loop ()
    in
    read_loop ();
    Atomic.set repl_stop true;
    Option.iter Domain.join poller_domain;
    Option.iter Domain.join heartbeat_domain;
    Mutex.lock pmutex;
    eof := true;
    Condition.broadcast pcond;
    Mutex.unlock pmutex;
    Domain.join printer;
    Service.shutdown svc;
    Durable.shutdown dmgr;
    Option.iter Replica.Primary.close primary;
    Option.iter Replica.Follower.close follower;
    Fmt.epr "service: %a@." Service.pp_stats (Service.stats svc);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived query service: newline-delimited requests on stdin, per-request status \
          lines on stdout, with admission control, retry, circuit-broken degradation and a \
          supervised worker pool.")
    Term.(
      ret
        (const run $ provenance_arg $ seed_arg $ jobs_arg $ queue_depth_arg
       $ request_timeout_arg $ max_retries_arg $ chaos_seed_arg $ chaos_kill_arg
       $ chaos_latency_arg $ chaos_latency_secs_arg $ chaos_budget_arg $ chaos_nan_arg
       $ state_dir_arg $ max_live_arg $ session_ttl_arg $ snapshot_every_arg
       $ no_wal_sync_arg $ no_group_commit_arg $ repl_ship_arg $ repl_follow_arg
       $ repl_id_arg $ repl_ack_arg $ repl_followers_arg $ repl_ack_timeout_arg
       $ repl_segment_frames_arg $ repl_retain_arg $ repl_auto_promote_arg
       $ max_line_bytes_arg $ base_arg))

let main_cmd =
  (* [run] is the default command, so [scallop --profile FILE] works without
     spelling out [run]. *)
  Cmd.group ~default:run_term
    (Cmd.info "scallop" ~version:"1.0.0"
       ~doc:"Scallop: a language for neurosymbolic programming (OCaml reproduction).")
    [ run_cmd; compile_cmd; repl_cmd; serve_cmd ]

let () = exit (Cmd.eval main_cmd)
