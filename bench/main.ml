(** Benchmark harness regenerating every table and figure of the paper's
    evaluation (Sec. 6), per the experiment index in DESIGN.md.

    Usage: [dune exec bench/main.exe -- [EXPERIMENT ...] [--full]
              [--checkpoint-dir DIR] [--resume] [--clip-grad X]]

    With no arguments every experiment runs in quick mode (small synthetic
    datasets, few epochs — absolute numbers are below the paper's, but the
    {e shapes} it reports are reproduced: which method wins, by what rough
    factor, and where the blowups/crossovers are).  [--full] scales the
    datasets and epochs up.  [--checkpoint-dir] snapshots training state
    (per-task subdirectories) so a killed run restarted with [--resume]
    continues from the newest valid snapshot; [--clip-grad] bounds the
    global gradient norm on every optimizer step.  Experiments:
      table1 table2 accuracy provenances table4 table5 fig18 fig19 pacman
      micro batch budget resilience service incr durability replication

    Each run prints paper-reported reference numbers alongside measured ones
    (marked [paper]); see EXPERIMENTS.md for the recorded comparison. *)

open Scallop_apps
module Mnist = Scallop_data.Mnist

let line () = Fmt.pr "%s@." (String.make 78 '-')

let section name =
  Fmt.pr "@.";
  line ();
  Fmt.pr "== %s@." name;
  line ()

type mode = {
  quick : bool;
  checkpoint_dir : string option;  (** --checkpoint-dir: snapshot training state here *)
  resume : bool;  (** --resume: keep existing snapshots instead of starting fresh *)
  clip_grad : float option;  (** --clip-grad: global gradient-norm bound *)
}

(* Benchmarks that double as correctness checks (batch determinism) bump
   this; the driver exits nonzero if any check failed. *)
let bench_failures = ref 0

let base_config (m : mode) =
  let c =
    if m.quick then
      { Common.default_config with Common.epochs = 3; n_train = 200; n_test = 100 }
    else { Common.default_config with Common.epochs = 6; n_train = 600; n_test = 200 }
  in
  { c with Common.clip_grad = m.clip_grad }

(* Per-task checkpoint policy under --checkpoint-dir: each training run gets
   its own subdirectory (snapshots embed model shapes, so runs must not share
   one).  Without --resume any existing snapshots are cleared first. *)
let checkpoint_for (m : mode) name : Common.checkpoint option =
  match m.checkpoint_dir with
  | None -> None
  | Some dir ->
      let sub = Filename.concat dir name in
      if not m.resume then Scallop_utils.Atomic_io.clear ~dir:sub;
      Some (Common.checkpoint sub)

(* ---- Table 1: LoC of modules -------------------------------------------------- *)

let find_repo_root () =
  let rec go dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  go (Sys.getcwd ())

let count_loc dir =
  let total = ref 0 in
  let rec walk d =
    if Sys.file_exists d && Sys.is_directory d then
      Array.iter
        (fun entry ->
          let path = Filename.concat d entry in
          if Sys.is_directory path then walk path
          else if Filename.check_suffix entry ".ml" then begin
            let ic = open_in path in
            (try
               while true do
                 let l = String.trim (input_line ic) in
                 if l <> "" then incr total
               done
             with End_of_file -> ());
            close_in ic
          end)
        (Sys.readdir d)
  in
  walk dir;
  !total

let bench_table1 _m =
  section "Table 1: LoC of core modules (paper: compiler 19K, runtime 16K, interpreter 2K, scallopy 4K — total 45K Rust)";
  match find_repo_root () with
  | None -> Fmt.pr "  (source tree not found; run from within the repository)@."
  | Some root ->
      let modules =
        [
          ("core language (lib/core)", "lib/core");
          ("decision diagrams (lib/bdd)", "lib/bdd");
          ("tensor/autodiff (lib/tensor)", "lib/tensor");
          ("nn + scallop layer (lib/nn)", "lib/nn");
          ("datasets (lib/data)", "lib/data");
          ("environments (lib/envs)", "lib/envs");
          ("applications (lib/apps)", "lib/apps");
          ("baselines (lib/baselines)", "lib/baselines");
          ("utilities (lib/utils)", "lib/utils");
          ("interpreter CLI (bin)", "bin");
          ("tests (test)", "test");
          ("benchmarks (bench)", "bench");
          ("examples (examples)", "examples");
        ]
      in
      let total = ref 0 in
      List.iter
        (fun (name, dir) ->
          let loc = count_loc (Filename.concat root dir) in
          total := !total + loc;
          Fmt.pr "  %-32s %6d LoC@." name loc)
        modules;
      Fmt.pr "  %-32s %6d LoC@." "TOTAL (OCaml)" !total

(* ---- Table 2: solution characteristics ----------------------------------------- *)

let bench_table2 _m =
  section "Table 2: Scallop solutions — interface relations, features (R/N/A), program LoC";
  Fmt.pr "  %-12s %-6s %-6s %-6s %5s  %s@." "Task" "Rec" "Neg" "Agg" "LoC" "Interface relations";
  List.iter
    (fun (task, relations, (r, n, a), loc) ->
      let b v = if v then "yes" else "-" in
      Fmt.pr "  %-12s %-6s %-6s %-6s %5d  %s@." task (b r) (b n) (b a) loc
        (String.concat ", " relations))
    Programs.table2;
  Fmt.pr "@.  (paper LoC: MNIST-R 2, HWF 39, Pathfinder 4, PacMan 31, CLUTRR 8, Mugen 46, CLEVR 51, VQAR 42)@."

(* ---- Fig. 15 / Table 3 / Fig. 17: accuracy vs baselines -------------------------- *)

let paper_note = "[paper]"

let bench_accuracy (m : mode) =
  section "Fig. 15 / Table 3 / Fig. 17: accuracy — Scallop vs baselines (synthetic data)";
  let config = base_config m in
  Fmt.pr "MNIST-R (paper: Scallop ≈ 97-99%%, DPL comparable but slow):@.";
  List.iter
    (fun task ->
      let checkpoint = checkpoint_for m ("mnist-" ^ Mnist.task_name task) in
      let r = Mnist_r.train_and_eval ?checkpoint config task in
      let b = Scallop_baselines.Neural.mnist_r config task in
      Fmt.pr "  %a@.  %a@." Common.pp_report r Common.pp_report b)
    [ Mnist.Sum2; Mnist.Sum3; Mnist.Sum4; Mnist.Less_than; Mnist.Not_3_or_4; Mnist.Count_3;
      Mnist.Count_3_or_4 ];
  Fmt.pr "@.HWF (paper: Scallop 96.7%%, NGS-m-BS 98.5%%, NGS-RL 3.4%% — the paper trains@.";
  Fmt.pr " 100 epochs on 10K formulas; quick mode uses a fraction, so expect the ordering@.";
  Fmt.pr " Scallop ≈ NGS-BS ≫ NGS-RL rather than the absolute numbers):@.";
  let hwf_config =
    { config with Common.epochs = (if m.quick then 8 else 15); n_train = (if m.quick then 400 else 1200) }
  in
  Fmt.pr "  %a@." Common.pp_report
    (Hwf_app.train_and_eval ?checkpoint:(checkpoint_for m "hwf") hwf_config);
  Fmt.pr "  %a@." Common.pp_report (Scallop_baselines.Ngs.train_bs hwf_config);
  Fmt.pr "  %a@." Common.pp_report (Scallop_baselines.Ngs.train_rl hwf_config);
  Fmt.pr "@.Pathfinder (paper: Scallop ~90%%, CNN ~86%%, S4 ~86-96%% %s):@." paper_note;
  Fmt.pr "  %a@." Common.pp_report (Pathfinder_app.train_and_eval config);
  Fmt.pr "  %a@." Common.pp_report (Scallop_baselines.Neural.pathfinder config);
  Fmt.pr "@.CLUTRR (paper: Scallop 91%% vs RoBERTa/GPT-3 ≤ 66%% %s):@." paper_note;
  let clutrr_config = { config with Common.n_train = max 80 (config.Common.n_train / 2) } in
  Fmt.pr "  %a@." Common.pp_report (Clutrr_app.train_and_eval clutrr_config);
  Fmt.pr "  CLUTRR-G rule learning (paper: learns composition facts from data):@.";
  let rl_config = { clutrr_config with Common.n_train = max 60 (clutrr_config.Common.n_train / 2) } in
  Fmt.pr "  %a@." Common.pp_report (Clutrr_app.train_and_eval_rule_learning rl_config);
  Fmt.pr "@.Mugen (paper: Scallop ≥ SDSC on video-text alignment/retrieval):@.";
  let mugen_r = Mugen_app.train_and_eval config in
  Fmt.pr "  %a@." Common.pp_report mugen_r;
  Fmt.pr "@.CLEVR (paper: Scallop 99.4%% vs NS-VQA 98.6%%, NSCL 98.9%%):@.";
  let clevr_config = { config with Common.n_train = max 100 (config.Common.n_train / 2) } in
  Fmt.pr "  %a@." Common.pp_report (Clevr_app.train_and_eval clevr_config);
  Fmt.pr "@.VQAR (paper: Scallop beats NMNs/LXMERT at high recall):@.";
  Fmt.pr "  %a@." Common.pp_report (Vqar_app.train_and_eval clevr_config)

(* ---- Fig. 16/17: provenance comparison -------------------------------------------- *)

let bench_provenances (m : mode) =
  section "Figs. 16-17: accuracy per provenance (dmmp / damp / dnmp / dtkp-k)";
  let config = { (base_config m) with Common.n_train = 150; n_test = 80 } in
  let provenances =
    [
      Scallop_core.Registry.Diff_max_min_prob;
      Scallop_core.Registry.Diff_add_mult_prob;
      Scallop_core.Registry.Diff_nand_mult_prob;
      Scallop_core.Registry.Diff_top_k_proofs_me 1;
      Scallop_core.Registry.Diff_top_k_proofs_me 3;
    ]
  in
  List.iter
    (fun task ->
      Fmt.pr "%s:@." (Mnist.task_name task);
      List.iter
        (fun spec ->
          let r = Mnist_r.train_and_eval { config with Common.provenance = spec } task in
          Fmt.pr "  %a@." Common.pp_report r)
        provenances)
    [ Mnist.Sum2; Mnist.Less_than; Mnist.Count_3 ];
  Fmt.pr "(paper: dtkp best on 6/9 tasks, damp on 2, dmmp on 1 — all close on easy tasks)@."

(* ---- Table 4: runtime per provenance ------------------------------------------------ *)

(** Train one epoch under [spec], measured on a small probe and scaled to
    the full epoch size.  A two-stage watchdog mirrors the paper's DPL
    timeout entries: a 2-sample pre-probe first; if that alone blows the
    budget, the extrapolated time is reported as a timeout without running
    the full probe (the paper reports DPL sum4 as "timeout" the same way). *)
let timed_epoch ?(sample_budget = 2.0) ~config ~task spec : string =
  let config = { config with Common.provenance = spec; Common.epochs = 1 } in
  let run n =
    let probe = { config with Common.n_train = n; Common.n_test = 2 } in
    let t0 = Scallop_utils.Monotonic.now () in
    (match task with
    | `Mnist t -> ignore (Mnist_r.train_and_eval probe t)
    | `Hwf -> ignore (Hwf_app.train_and_eval probe));
    (Scallop_utils.Monotonic.now () -. t0) /. float_of_int n
  in
  try
    let pre = run 2 in
    if pre > sample_budget then
      Fmt.str "%.0fs (timeout)" (pre *. float_of_int config.Common.n_train)
    else begin
      let sample_t = run (max 8 (config.Common.n_train / 8)) in
      Fmt.str "%.1fs" (sample_t *. float_of_int config.Common.n_train)
    end
  with _ -> "error"

let bench_table4 (m : mode) =
  section "Table 4: training time per epoch — provenances vs exact (DPL)";
  let config = { (base_config m) with Common.n_train = (if m.quick then 120 else 400) } in
  let provs =
    [
      ("dmmp", Scallop_core.Registry.Diff_max_min_prob);
      ("damp", Scallop_core.Registry.Diff_add_mult_prob);
      ("dtkp-3", Scallop_core.Registry.Diff_top_k_proofs_me 3);
      ("dtkp-10", Scallop_core.Registry.Diff_top_k_proofs_me 10);
      ("exact(DPL)", Scallop_core.Registry.Exact_prob);
    ]
  in
  let tasks =
    [
      ("sum2", `Mnist Mnist.Sum2);
      ("sum3", `Mnist Mnist.Sum3);
      ("sum4", `Mnist Mnist.Sum4);
      ("less-than", `Mnist Mnist.Less_than);
      ("not-3-or-4", `Mnist Mnist.Not_3_or_4);
      ("HWF", `Hwf);
    ]
  in
  Fmt.pr "  %-12s" "task";
  List.iter (fun (n, _) -> Fmt.pr " %12s" n) provs;
  Fmt.pr "@.";
  List.iter
    (fun (name, task) ->
      Fmt.pr "  %-12s" name;
      List.iter
        (fun (_, spec) ->
          Fmt.pr " %12s" (timed_epoch ~config ~task spec);
          Format.pp_print_flush Format.std_formatter ())
        provs;
      Fmt.pr "@.")
    tasks;
  Fmt.pr "@.(paper, sec/epoch: sum2 34/88/72/185 vs DPL 21430; sum4 34/154/77/4329 vs DPL timeout;@.";
  Fmt.pr " the shape to reproduce: dtkp-10 ≫ dtkp-3 and exact/DPL blows up combinatorially)@."

(* ---- Table 5: HWF data efficiency ----------------------------------------------------- *)

let bench_table5 (m : mode) =
  section "Table 5: HWF data efficiency (accuracy at 100% / 50% / 25% of training data)";
  let full_n = if m.quick then 240 else 800 in
  let update_budget = if m.quick then 2000 else 8000 in
  Fmt.pr "  %-10s %12s %12s %12s@." "%train" "Scallop dtkp-5" "NGS-BS" "NGS-RL";
  List.iter
    (fun frac ->
      let n = int_of_float (float_of_int full_n *. frac) in
      (* train each data fraction to the same gradient-update budget, as the
         paper trains every setting to convergence (100 epochs) *)
      let c = { (base_config m) with Common.n_train = n; Common.epochs = max 4 (update_budget / n) } in
      let scallop =
        Hwf_app.train_and_eval { c with Common.provenance = Scallop_core.Registry.Diff_top_k_proofs_me 5 }
      in
      let bs = Scallop_baselines.Ngs.train_bs c in
      let rl = Scallop_baselines.Ngs.train_rl c in
      Fmt.pr "  %-10.0f %11.1f%% %11.1f%% %11.1f%%@." (100.0 *. frac)
        (100.0 *. scallop.Common.accuracy) (100.0 *. bs.Common.accuracy)
        (100.0 *. rl.Common.accuracy);
      Format.pp_print_flush Format.std_formatter ())
    [ 1.0; 0.5; 0.25 ];
  Fmt.pr "@.(paper: Scallop 97.9/95.7/93.0, NGS-m-BS 98.5/95.7/93.3, NGS-RL ~3.5 throughout —@.";
  Fmt.pr " shape: Scallop degrades slowly like BS; RL never learns)@."

(* ---- Fig. 18: CLUTRR systematic generalization ------------------------------------------ *)

let bench_fig18 (m : mode) =
  section "Fig. 18: CLUTRR systematic generalizability (train k∈{2,3}, test k∈2..6)";
  let config =
    { (base_config m) with Common.n_train = (if m.quick then 100 else 300); n_test = 60 }
  in
  let test_ks = [ 2; 3; 4; 5; 6 ] in
  let scallop = Clutrr_app.systematic_generalization ~test_ks config in
  let neural = Scallop_baselines.Neural.clutrr_generalization ~test_ks config in
  Fmt.pr "  %-8s %10s %14s@." "test k" "Scallop" "neural (MLP)";
  List.iter2
    (fun (k, sa) (_, na) ->
      Fmt.pr "  %-8d %9.1f%% %13.1f%%@." k (100.0 *. sa) (100.0 *. na))
    scallop neural;
  Fmt.pr "@.(paper: Scallop degrades gently with k; RoBERTa/BiLSTM/GPT-3 collapse beyond the@.";
  Fmt.pr " training lengths)@."

(* ---- Fig. 19: Mugen interpretability ------------------------------------------------------ *)

let bench_fig19 (m : mode) =
  section "Fig. 19: Mugen interpretability — per-frame (action, mod) predictions";
  let config = base_config m in
  let rng = Scallop_utils.Rng.create config.Common.seed in
  let data = Scallop_data.Mugen.create ~seed:(config.Common.seed + 1) () in
  let model = Mugen_app.create_model ~rng ~dim:16 in
  let opt =
    Scallop_tensor.Optim.adam ~lr:config.Common.lr (Scallop_nn.Layers.Mlp.params model.Mugen_app.mlp)
  in
  (* train briefly on the alignment objective only *)
  let spec = Scallop_core.Registry.Diff_top_k_proofs 3 in
  for _ = 1 to config.Common.epochs do
    List.iter
      (fun (s : Scallop_data.Mugen.sample) ->
        let y = Mugen_app.score ~spec model ~frame_images:s.Scallop_data.Mugen.frame_images ~text:s.Scallop_data.Mugen.text in
        let target = Scallop_tensor.Nd.scalar (if s.Scallop_data.Mugen.aligned then 1.0 else 0.0) in
        let loss = Common.bce y (Scallop_tensor.Autodiff.const target) in
        opt.Scallop_tensor.Optim.zero_grad ();
        Scallop_tensor.Autodiff.backward loss;
        opt.Scallop_tensor.Optim.step ())
      (Scallop_data.Mugen.dataset data config.Common.n_train)
  done;
  (* report per-frame predictions on fresh videos *)
  let correct = ref 0 and total = ref 0 in
  List.iteri
    (fun i (s : Scallop_data.Mugen.sample) ->
      let preds = Mugen_app.frame_predictions model s.Scallop_data.Mugen.frame_images in
      if i < 3 then begin
        Fmt.pr "  video %d:@." i;
        List.iter2
          (fun (ta, tm) (pa, pm) ->
            Fmt.pr "    truth (%s,%s)  predicted (%s,%s)%s@." ta tm pa pm
              (if (ta, tm) = (pa, pm) then "" else "   <-- miss"))
          s.Scallop_data.Mugen.frames preds
      end;
      List.iter2
        (fun t p ->
          incr total;
          if t = p then incr correct)
        s.Scallop_data.Mugen.frames preds)
    (Scallop_data.Mugen.dataset data 40);
  Fmt.pr "  frame-level (action, mod) accuracy (never directly supervised): %.1f%%@."
    (100.0 *. float_of_int !correct /. float_of_int !total);
  let tvr = Mugen_app.retrieval_accuracy ~spec ~pools:(if m.quick then 10 else 30) data model in
  Fmt.pr "  text-to-video retrieval accuracy (pool of 8): %.1f%%@." (100.0 *. tvr)

(* ---- PacMan ---------------------------------------------------------------------------------- *)

let bench_pacman (m : mode) =
  section "PacMan-Maze (Sec. 2 / 6.3): success rate and training-episode efficiency";
  let episodes = if m.quick then 120 else 300 in
  let config =
    { (base_config m) with Common.provenance = Scallop_core.Registry.Diff_top_k_proofs 1; lr = 0.02 }
  in
  let r = Pacman_app.train_and_eval ~episodes ~eval_episodes:100 ~noise:0.25 config in
  Fmt.pr "  Scallop agent:  %d training episodes -> %.1f%% success (%.2fs/episode)@." episodes
    (100.0 *. r.Common.accuracy) r.Common.epoch_time;
  let dqn_acc, dqn_t = Scallop_baselines.Dqn.train_and_eval ~episodes ~eval_episodes:100 ~noise:0.25 ~seed:config.Common.seed () in
  Fmt.pr "  DQN baseline:   %d training episodes -> %.1f%% success (%.2fs/episode)@." episodes
    (100.0 *. dqn_acc) dqn_t;
  let dqn_more = if m.quick then 1000 else 5000 in
  let dqn_acc2, _ = Scallop_baselines.Dqn.train_and_eval ~episodes:dqn_more ~eval_episodes:100 ~noise:0.25 ~seed:config.Common.seed () in
  Fmt.pr "  DQN baseline:   %d training episodes -> %.1f%% success@." dqn_more (100.0 *. dqn_acc2);
  Fmt.pr "@.(paper: Scallop 50 episodes -> 99.4%%; DQN needs 50K episodes for 84.9%% —@.";
  Fmt.pr " shape: the symbolic agent is orders of magnitude more episode-efficient)@."

(* ---- micro-benchmarks (Appendix B tables 6-8) -------------------------------------------------- *)

let rec bench_micro (m : mode) =
  section "Appendix B (Tables 6-8): provenance operation micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let mmp_ops =
    Test.make ~name:"mmp add/mult/negate"
      (Staged.stage (fun () ->
           let open Scallop_core.Prov_discrete.Max_min_prob in
           ignore (negate (mult (add 0.4 0.7) 0.6))))
  in
  let dual = Scallop_core.Dual.var 0 0.5
  and dual2 = Scallop_core.Dual.var 1 0.25 in
  let damp_ops =
    Test.make ~name:"damp dual add/mult"
      (Staged.stage (fun () -> ignore (Scallop_core.Dual.mul (Scallop_core.Dual.add dual dual2) dual)))
  in
  let env = Scallop_core.Formula.env (fun v -> 0.1 +. (0.08 *. float_of_int (v mod 10))) in
  let f1 = [ Scallop_core.Formula.proof_of_literals [ (0, true); (1, true) ];
             Scallop_core.Formula.proof_of_literals [ (2, true) ] ] in
  let f2 = [ Scallop_core.Formula.proof_of_literals [ (3, true); (1, false) ] ] in
  let dtkp_conj =
    Test.make ~name:"dtkp-3 conj_k"
      (Staged.stage (fun () -> ignore (Scallop_core.Formula.conj_k env 3 f1 f2)))
  in
  let dtkp_neg =
    Test.make ~name:"dtkp-3 neg_k (cnf2dnf)"
      (Staged.stage (fun () -> ignore (Scallop_core.Formula.neg_k env 3 f1)))
  in
  let wmc =
    Test.make ~name:"WMC via BDD (5 proofs, 8 vars)"
      (Staged.stage
         (let f =
            List.init 5 (fun i ->
                Scallop_core.Formula.proof_of_literals
                  [ (i, true); ((i + 3) mod 8, true); ((i + 5) mod 8, false) ])
          in
          fun () -> ignore (Scallop_core.Wmc.prob ~env f)))
  in
  let tc_src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  let compiled = Scallop_core.Session.compile tc_src in
  let facts =
    let rng = Scallop_utils.Rng.create 5 in
    [
      ( "edge",
        List.init 30 (fun _ ->
            ( Scallop_core.Provenance.Input.prob (Scallop_utils.Rng.float rng),
              Scallop_core.Tuple.of_list
                [ Scallop_core.Value.int Scallop_core.Value.I32 (Scallop_utils.Rng.int rng 10);
                  Scallop_core.Value.int Scallop_core.Value.I32 (Scallop_utils.Rng.int rng 10) ] )) );
    ]
  in
  let fixpoint =
    Test.make ~name:"transitive closure (30 edges, mmp, semi-naive)"
      (Staged.stage (fun () ->
           ignore
             (Scallop_core.Session.run
                ~provenance:(Scallop_core.Registry.create Scallop_core.Registry.Max_min_prob)
                compiled ~facts ())))
  in
  let tests = [ mmp_ops; damp_ops; dtkp_conj; dtkp_neg; wmc; fixpoint ] in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) i raw)
        instances
    in
    let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
    Hashtbl.iter
      (fun _metric tbl ->
        Hashtbl.iter
          (fun name ols ->
            match Analyze.OLS.estimates ols with
            | Some [ t ] -> Fmt.pr "  %-44s %10.1f ns/op@." name t
            | _ -> Fmt.pr "  %-44s (no estimate)@." name)
          tbl)
      results
  in
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"g" [ t ])) tests;
  Fmt.pr "@.(Appendix B complexity: mmp O(1), damp O(n), dtkp conj O(n^2 k^2), neg/WMC exponential@.";
  Fmt.pr " in the worst case — the measured ordering above should respect that hierarchy)@.";
  bench_interp m

(* ---- interpreter workloads (BENCH_interp.json) ------------------------------------------------- *)

(* End-to-end SclRam interpreter throughput on the two shapes every later
   perf PR is judged against: a deep recursive fixpoint (transitive closure
   on a chain, maximizing semi-naive iteration count) and a wide aggregation
   (sum + count over many groups).  Each workload runs with the fixpoint
   index cache on and off, under discrete, minmaxprob and top-k-proof
   provenances, and the measurements land in BENCH_interp.json. *)
and bench_interp (m : mode) =
  section "Interpreter workloads: fixpoint + aggregation throughput (writes BENCH_interp.json)";
  let open Scallop_core in
  let tc_src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  let agg_src =
    {|type item(i32, i32)
rel total(g, s) = s := sum(x: item(g, x))
rel sizes(g, n) = n := count(x: item(g, x))
query total
query sizes|}
  in
  let chain_facts n =
    [
      ( "edge",
        List.init n (fun i ->
            ( Provenance.Input.prob 0.9,
              Tuple.of_list [ Value.int Value.I32 i; Value.int Value.I32 (i + 1) ] )) );
    ]
  in
  let agg_facts ~groups ~per_group =
    let rng = Scallop_utils.Rng.create 9 in
    [
      ( "item",
        List.concat
          (List.init groups (fun g ->
               List.init per_group (fun _ ->
                   ( Provenance.Input.prob (0.5 +. (0.5 *. Scallop_utils.Rng.float rng)),
                     Tuple.of_list
                       [
                         Value.int Value.I32 g;
                         Value.int Value.I32 (Scallop_utils.Rng.int rng 10);
                       ] )))) );
    ]
  in
  let time_once ~cache ~columnar ~spec compiled facts =
    let config =
      { (Interp.default_config ()) with Interp.cache_indices = cache; columnar }
    in
    let t0 = Scallop_utils.Monotonic.now () in
    ignore (Session.run ~config ~provenance:(Registry.create spec) compiled ~facts ());
    Scallop_utils.Monotonic.now () -. t0
  in
  (* Allocation profile: minor-heap words per derived output tuple, from a
     dedicated run so the timed runs stay unperturbed.  The columnar rows
     should sit well below their row-engine twins — flat columns replace
     one boxed tuple + map node per derivation. *)
  let alloc_per_tuple ~cache ~columnar ~spec compiled facts =
    let config =
      { (Interp.default_config ()) with Interp.cache_indices = cache; columnar }
    in
    let w0 = Gc.minor_words () in
    let r = Session.run ~config ~provenance:(Registry.create spec) compiled ~facts () in
    let words = Gc.minor_words () -. w0 in
    let tuples =
      List.fold_left (fun acc (_, rows) -> acc + List.length rows) 0 r.Session.outputs
    in
    if tuples = 0 then 0.0 else words /. float_of_int tuples
  in
  let results = ref [] in
  let means : ((string * string * bool * bool) * float) list ref = ref [] in
  let runs = if m.quick then 3 else 8 in
  let measure ?(engines = [ false ]) ~name ~prov_name ~spec ~n compiled facts =
    List.iter
      (fun columnar ->
        List.iter
          (fun cache ->
            ignore (time_once ~cache ~columnar ~spec compiled facts);
            let total = ref 0.0 in
            for _ = 1 to runs do
              total := !total +. time_once ~cache ~columnar ~spec compiled facts
            done;
            let mean = !total /. float_of_int runs in
            let words = alloc_per_tuple ~cache ~columnar ~spec compiled facts in
            means := ((name, prov_name, cache, columnar), mean) :: !means;
            Fmt.pr
              "  %-24s %-12s n=%-5d cache=%-5b columnar=%-5b %9.2f ms %10.2f ops/sec %9.1f w/tuple@."
              name prov_name n cache columnar (1000.0 *. mean) (1.0 /. mean) words;
            Format.pp_print_flush Format.std_formatter ();
            results :=
              Fmt.str
                {|    {"name": %S, "provenance": %S, "n": %d, "cache": %b, "columnar": %b, "runs": %d, "mean_ms": %.3f, "ops_per_sec": %.3f, "minor_words_per_tuple": %.1f}|}
                name prov_name n cache columnar runs (1000.0 *. mean) (1.0 /. mean) words
              :: !results)
          [ true; false ])
      engines
  in
  let tc = Session.compile tc_src in
  let agg = Session.compile agg_src in
  measure ~engines:[ false; true ] ~name:"transitive-closure-chain" ~prov_name:"boolean"
    ~spec:Registry.Boolean ~n:500 tc (chain_facts 500);
  measure ~engines:[ false; true ] ~name:"transitive-closure-chain" ~prov_name:"minmaxprob"
    ~spec:Registry.Max_min_prob ~n:500 tc (chain_facts 500);
  (* TC-120 under top-k proofs, three configurations: the guided best-first
     operators with the cross-iteration WMC cache (the default), guided
     without the cache, and the eager reference operators without the cache
     (the historic configuration every speedup claim is measured against).
     The repeated-run methodology means the cached rows report warm-cache
     performance — exactly the fixpoint-iteration / training-step reuse the
     cache exists for. *)
  Wmc.clear_cache ();
  measure ~name:"transitive-closure-chain" ~prov_name:"topkproofs-3"
    ~spec:(Registry.Top_k_proofs 3) ~n:120 tc (chain_facts 120);
  Wmc.set_cache_enabled false;
  measure ~name:"transitive-closure-chain" ~prov_name:"topkproofs-3-nowmccache"
    ~spec:(Registry.Top_k_proofs 3) ~n:120 tc (chain_facts 120);
  measure ~name:"transitive-closure-chain" ~prov_name:"topkproofseager-3-nowmccache"
    ~spec:(Registry.Top_k_proofs_eager 3) ~n:120 tc (chain_facts 120);
  Wmc.set_cache_enabled true;
  (* computed here, before the aggregation workload measures another
     topkproofs-3 row under the same key *)
  let speedup =
    match
      ( List.assoc_opt
          ("transitive-closure-chain", "topkproofseager-3-nowmccache", true, false)
          !means,
        List.assoc_opt ("transitive-closure-chain", "topkproofs-3", true, false) !means )
    with
    | Some eager, Some cached when cached > 0.0 -> eager /. cached
    | _ -> 0.0
  in
  measure ~engines:[ false; true ] ~name:"aggregation-sum-count" ~prov_name:"boolean"
    ~spec:Registry.Boolean ~n:2000 agg (agg_facts ~groups:50 ~per_group:40);
  measure ~engines:[ false; true ] ~name:"aggregation-sum-count" ~prov_name:"minmaxprob"
    ~spec:Registry.Max_min_prob ~n:2000 agg (agg_facts ~groups:50 ~per_group:40);
  measure ~engines:[ false; true ] ~name:"aggregation-sum-count" ~prov_name:"topkproofs-3"
    ~spec:(Registry.Top_k_proofs 3) ~n:60 agg (agg_facts ~groups:6 ~per_group:10);
  Fmt.pr "@.  TC-120 topkproofs-3 guided+cache vs eager (historic): %.2fx@." speedup;
  (* Columnar gate: the vectorized engine must beat the cached row engine by
     >= 10x on the TC-500 boolean workload.  A shortfall is a perf
     regression in the batch operators and fails the bench driver. *)
  let col_gate = 10.0 in
  let col_speedup =
    match
      ( List.assoc_opt ("transitive-closure-chain", "boolean", true, false) !means,
        List.assoc_opt ("transitive-closure-chain", "boolean", true, true) !means )
    with
    | Some row, Some col when col > 0.0 -> row /. col
    | _ -> 0.0
  in
  if col_speedup < col_gate then begin
    incr bench_failures;
    Fmt.epr "  COLUMNAR GATE FAILURE: TC-500 boolean columnar speedup %.2fx < %.0fx@."
      col_speedup col_gate
  end;
  Fmt.pr "  TC-500 boolean columnar vs row (cached): %.2fx %s@." col_speedup
    (if col_speedup >= col_gate then "ok" else "VIOLATION");
  let oc = open_out "BENCH_interp.json" in
  output_string oc "{\n  \"benchmarks\": [\n";
  output_string oc (String.concat ",\n" (List.rev !results));
  output_string oc "\n  ],\n";
  output_string oc
    (Fmt.str "  \"tc120_topk_speedup_guided_cache_vs_eager\": %.3f,\n" speedup);
  output_string oc (Fmt.str "  \"tc500_columnar_speedup\": %.3f\n}\n" col_speedup);
  close_out oc;
  Fmt.pr "@.  wrote BENCH_interp.json (%d measurements)@." (List.length !results)

(* ---- parallel batch runtime (BENCH_batch.json) ------------------------------------------------- *)

(* Domain-scaling curve for [Session.run_batch] on the batched TC /
   aggregation workloads: one compiled plan, a batch of per-sample fact
   sets, executed at 1/2/4/8 domains.  Every parallel run is compared
   tuple-for-tuple (probabilities included) against the sequential
   reference, so this benchmark doubles as a correctness check — any
   divergence bumps [bench_failures] and the driver exits nonzero. *)
let bench_batch (m : mode) =
  section "Parallel batch runtime: domain-scaling curve (writes BENCH_batch.json)";
  let open Scallop_core in
  let tc_src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  let agg_src =
    {|type item(i32, i32)
rel total(g, s) = s := sum(x: item(g, x))
rel sizes(g, n) = n := count(x: item(g, x))
query total
query sizes|}
  in
  let batch_size = if m.quick then 12 else 24 in
  let runs = if m.quick then 3 else 6 in
  let jobs_curve = [ 1; 2; 4; 8 ] in
  let base_rng = Scallop_utils.Rng.create 7 in
  (* Per-sample fact sets drawn from independent substreams: the batch is a
     realistic minibatch (same program, different inputs). *)
  let chain_sample n i =
    let rng = Scallop_utils.Rng.substream base_rng i in
    [
      ( "edge",
        List.init n (fun j ->
            ( Provenance.Input.prob (0.5 +. (0.5 *. Scallop_utils.Rng.float rng)),
              Tuple.of_list [ Value.int Value.I32 j; Value.int Value.I32 (j + 1) ] )) );
    ]
  in
  let agg_sample ~groups ~per_group i =
    let rng = Scallop_utils.Rng.substream base_rng (1000 + i) in
    [
      ( "item",
        List.concat
          (List.init groups (fun g ->
               List.init per_group (fun _ ->
                   ( Provenance.Input.prob (0.5 +. (0.5 *. Scallop_utils.Rng.float rng)),
                     Tuple.of_list
                       [
                         Value.int Value.I32 g;
                         Value.int Value.I32 (Scallop_utils.Rng.int rng 10);
                       ] )))) );
    ]
  in
  let output_equal (a : Session.result) (b : Session.result) =
    let rel_equal (pa, la) (pb, lb) =
      String.equal pa pb
      && List.length la = List.length lb
      && List.for_all2
           (fun (ta, oa) (tb, ob) -> Tuple.compare ta tb = 0 && Stdlib.compare oa ob = 0)
           la lb
    in
    List.length a.Session.outputs = List.length b.Session.outputs
    && List.for_all2 rel_equal a.Session.outputs b.Session.outputs
    && Stdlib.compare a.Session.fact_ids b.Session.fact_ids = 0
  in
  let results = ref [] in
  let measure ~name ~prov_name ~spec ~n compiled batch =
    (* Sequential reference through the documented equivalence: a plain map
       of [Session.run] under [batch_config]. *)
    let config () = Interp.default_config () in
    let reference =
      Array.mapi
        (fun i facts ->
          Session.run
            ~config:(Session.batch_config (config ()) i)
            ~provenance:(Registry.create spec) compiled ~facts ())
        batch
    in
    let seq_mean = ref 0.0 in
    List.iter
      (fun jobs ->
        let run_once () =
          Session.run_batch_exn ~jobs ~config:(config ())
            ~provenance_of:(fun _ -> Registry.create spec)
            compiled batch
        in
        let out = run_once () in
        let ok =
          Array.length out = Array.length reference
          && Array.for_all2 output_equal out reference
        in
        if not ok then begin
          incr bench_failures;
          Fmt.epr "  DIVERGENCE: %s/%s at jobs=%d differs from sequential!@." name prov_name
            jobs
        end;
        let total = ref 0.0 in
        for _ = 1 to runs do
          let t0 = Scallop_utils.Monotonic.now () in
          ignore (run_once ());
          total := !total +. (Scallop_utils.Monotonic.now () -. t0)
        done;
        let mean = !total /. float_of_int runs in
        if jobs = 1 then seq_mean := mean;
        let speedup = if mean > 0.0 then !seq_mean /. mean else 0.0 in
        Fmt.pr
          "  %-24s %-12s n=%-4d batch=%-3d jobs=%d %9.2f ms %8.1f samples/s  x%.2f %s@." name
          prov_name n batch_size jobs (1000.0 *. mean)
          (float_of_int batch_size /. mean)
          speedup
          (if ok then "" else "DIVERGED");
        Format.pp_print_flush Format.std_formatter ();
        results :=
          Fmt.str
            {|    {"workload": %S, "provenance": %S, "n": %d, "batch": %d, "jobs": %d, "runs": %d, "mean_ms": %.3f, "samples_per_sec": %.3f, "speedup_vs_seq": %.3f, "deterministic": %b}|}
            name prov_name n batch_size jobs runs (1000.0 *. mean)
            (float_of_int batch_size /. mean)
            speedup ok
          :: !results)
      jobs_curve
  in
  let tc = Session.compile tc_src in
  let agg = Session.compile agg_src in
  let tc_n = if m.quick then 120 else 250 in
  measure ~name:"transitive-closure-chain" ~prov_name:"minmaxprob" ~spec:Registry.Max_min_prob
    ~n:tc_n tc
    (Array.init batch_size (chain_sample tc_n));
  measure ~name:"transitive-closure-chain" ~prov_name:"topkproofs-2"
    ~spec:(Registry.Top_k_proofs 2) ~n:60 tc
    (Array.init batch_size (chain_sample 60));
  measure ~name:"aggregation-sum-count" ~prov_name:"minmaxprob" ~spec:Registry.Max_min_prob
    ~n:1600 agg
    (Array.init batch_size (agg_sample ~groups:40 ~per_group:40));
  let oc = open_out "BENCH_batch.json" in
  output_string oc
    (Fmt.str "{\n  \"cores\": %d,\n  \"benchmarks\": [\n"
       (Scallop_utils.Pool.default_jobs ()));
  output_string oc (String.concat ",\n" (List.rev !results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Fmt.pr "@.  wrote BENCH_batch.json (%d measurements, %d cores available)@."
    (List.length !results)
    (Scallop_utils.Pool.default_jobs ());
  if !bench_failures > 0 then
    Fmt.epr "  %d determinism check(s) FAILED@." !bench_failures

(* ---- resource governance (BENCH_budget.json) --------------------------------------------------- *)

(* Two questions about the budget layer (see lib/core/budget.ml):
   1. Overhead: what do the cooperative checks cost on the 500-chain TC
      workload when a watched budget is active but never exhausted, vs. the
      default (unwatched) config?  The amortized design targets <= 5%.
   2. Enforcement latency: how long after its 1-second deadline does a
      divergent program actually stop?  Must be < 2x the deadline, in both
      sequential and jobs=2 batched execution; a violation bumps
      [bench_failures] and the driver exits nonzero. *)
let bench_budget (m : mode) =
  section "Resource governance: budget overhead + enforcement latency (writes BENCH_budget.json)";
  let open Scallop_core in
  let tc_src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  let chain_facts n =
    [
      ( "edge",
        List.init n (fun i ->
            ( Provenance.Input.prob 0.9,
              Tuple.of_list [ Value.int Value.I32 i; Value.int Value.I32 (i + 1) ] )) );
    ]
  in
  let results = ref [] in
  let runs = if m.quick then 3 else 8 in
  (* -- overhead on the 500-chain TC benchmark -------------------------------- *)
  let tc = Session.compile tc_src in
  let facts = chain_facts 500 in
  let time_once ~budget ~spec =
    let config = { (Interp.default_config ()) with Interp.budget } in
    let t0 = Scallop_utils.Monotonic.now () in
    ignore (Session.run ~config ~provenance:(Registry.create spec) tc ~facts ());
    Scallop_utils.Monotonic.now () -. t0
  in
  (* A watched-but-never-exhausted budget: every axis active, all generous. *)
  let watched =
    Budget.make ~timeout:3600.0 ~max_tuples:max_int ~max_node_evals:max_int ()
  in
  (* Interleave base/governed runs: measuring one arm wholly after the other
     biases the later arm by whatever the heap grew to in the meantime. *)
  let interleaved_means ~spec =
    ignore (time_once ~budget:Budget.default ~spec);
    ignore (time_once ~budget:watched ~spec);
    let base = ref 0.0 and governed = ref 0.0 in
    for _ = 1 to runs do
      base := !base +. time_once ~budget:Budget.default ~spec;
      governed := !governed +. time_once ~budget:watched ~spec
    done;
    (!base /. float_of_int runs, !governed /. float_of_int runs)
  in
  List.iter
    (fun (prov_name, spec) ->
      let base, governed = interleaved_means ~spec in
      let overhead_pct = 100.0 *. ((governed /. base) -. 1.0) in
      Fmt.pr "  tc-500 %-12s default %8.2f ms  governed %8.2f ms  overhead %+.2f%%@."
        prov_name (1000.0 *. base) (1000.0 *. governed) overhead_pct;
      Format.pp_print_flush Format.std_formatter ();
      results :=
        Fmt.str
          {|    {"name": "tc-500-overhead", "provenance": %S, "runs": %d, "base_ms": %.3f, "governed_ms": %.3f, "overhead_pct": %.2f}|}
          prov_name runs (1000.0 *. base) (1000.0 *. governed) overhead_pct
        :: !results)
    [ ("boolean", Registry.Boolean); ("minmaxprob", Registry.Max_min_prob) ];
  (* -- enforcement latency on a divergent program ---------------------------- *)
  let divergent_src =
    {|type seed(i32)
rel n(x) = seed(x)
rel n(x + 1) = n(x)
query n|}
  in
  let div = Session.compile divergent_src in
  let seed_facts =
    [ ("seed", [ (Provenance.Input.none, Tuple.of_list [ Value.int Value.I32 0 ]) ]) ]
  in
  let deadline = 1.0 in
  (* Deadline-only budget: lift the iteration cap so the wall clock, not the
     10k-iteration guardrail, is what stops the program. *)
  let budget = { Budget.unlimited with Budget.timeout = Some deadline } in
  let config () = { (Interp.default_config ()) with Interp.budget = budget } in
  let check ~name outcome elapsed =
    let stopped_by_deadline =
      match outcome with
      | Error (Exec_error.Budget_exceeded { kind = Exec_error.Deadline; _ }) -> true
      | _ -> false
    in
    let within = elapsed < 2.0 *. deadline in
    if not (stopped_by_deadline && within) then begin
      incr bench_failures;
      Fmt.epr "  ENFORCEMENT FAILURE: %s stopped_by_deadline=%b elapsed=%.2fs@." name
        stopped_by_deadline elapsed
    end;
    Fmt.pr "  %-28s deadline=%.1fs stopped in %6.2fs %s@." name deadline elapsed
      (if stopped_by_deadline && within then "ok" else "VIOLATION");
    Format.pp_print_flush Format.std_formatter ();
    results :=
      Fmt.str
        {|    {"name": %S, "deadline_s": %.1f, "stopped_s": %.3f, "typed_deadline_error": %b, "within_2x": %b}|}
        name deadline elapsed stopped_by_deadline within
      :: !results
  in
  let t0 = Scallop_utils.Monotonic.now () in
  let outcome =
    try
      ignore
        (Session.run ~config:(config ()) ~provenance:(Registry.create Registry.Boolean) div
           ~facts:seed_facts ());
      Ok ()
    with Session.Error e -> Error e
  in
  check ~name:"divergent-sequential" outcome (Scallop_utils.Monotonic.now () -. t0);
  (* Batched at jobs=2: the divergent sample must come back as a per-sample
     [Error] while its sibling (empty seed: converges instantly) completes. *)
  let batch = [| seed_facts; [ ("seed", []) ] |] in
  let t0 = Scallop_utils.Monotonic.now () in
  let out =
    Session.run_batch ~jobs:2 ~config:(config ())
      ~provenance_of:(fun _ -> Registry.create Registry.Boolean)
      div batch
  in
  let elapsed = Scallop_utils.Monotonic.now () -. t0 in
  let sibling_ok = match out.(1) with Ok _ -> true | Error _ -> false in
  if not sibling_ok then begin
    incr bench_failures;
    Fmt.epr "  ENFORCEMENT FAILURE: sibling sample failed alongside divergent one@."
  end;
  check ~name:"divergent-batch-jobs2"
    (match out.(0) with Ok _ -> Ok () | Error e -> Error e)
    elapsed;
  let oc = open_out "BENCH_budget.json" in
  output_string oc "{\n  \"benchmarks\": [\n";
  output_string oc (String.concat ",\n" (List.rev !results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Fmt.pr "@.  wrote BENCH_budget.json (%d measurements)@." (List.length !results)

(* ---- fault tolerance (BENCH_resilience.json) --------------------------------------------------- *)

(* Four questions about the fault-tolerant training runtime (see
   lib/apps/common.ml "crash-safe checkpointing"):
   1. Overhead: what does periodic snapshotting cost per epoch on a real
      neurosymbolic training run (MNIST-R sum3)?  Target <= 5%.
   2. Recovery latency: how long does resume-from-latest-valid take
      (read + checksum + restore into live tensors)?
   3. Determinism: does kill-at-step-N + resume reproduce the uninterrupted
      run's final parameters bit for bit?
   4. Fallback: with the newest snapshot corrupted, does resume fall back to
      the previous generation?
   Violations of 1, 3 or 4 bump [bench_failures] (nonzero driver exit). *)
let bench_resilience (m : mode) =
  section "Fault tolerance: checkpoint overhead + recovery (writes BENCH_resilience.json)";
  let open Scallop_tensor in
  let open Scallop_nn in
  let results = ref [] in
  let fresh_dir name =
    let dir = Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "scallop-bench-resilience-%s-%d" name (Unix.getpid ())) in
    Scallop_utils.Atomic_io.clear ~dir;
    dir
  in
  (* -- 1. checkpoint overhead on MNIST-R sum2 -------------------------------- *)
  let config =
    { (base_config m) with
      Common.epochs = 2;
      n_train = (if m.quick then 300 else 500); n_test = 20 }
  in
  (* checkpoint cadence: one snapshot per ~200 optimizer steps.  The gated
     metric is the amortized cost — (saves per epoch x median save latency)
     over the plain epoch time — because a snapshot's price is two fsyncs,
     and on a shared container a single fsync stall in an end-to-end
     difference-of-two-runs measurement produces arbitrary overhead
     numbers.  The end-to-end checkpointed epoch time is still measured
     (once) and reported as an informational field. *)
  let every_n_steps = 200 in
  let ck_dir = fresh_dir "overhead" in
  let plain = Mnist_r.train_and_eval config Mnist.Sum3 in
  let ck = { (Common.checkpoint ck_dir) with Common.every_n_steps } in
  let ckpt = Mnist_r.train_and_eval ~checkpoint:ck config Mnist.Sum3 in
  (* median latency of saving a representative snapshot (an MNIST-sized
     MLP + Adam state, ~40 KB payload) through the full atomic protocol *)
  let median_save_s =
    let rng = Scallop_utils.Rng.create 99 in
    let mlp = Layers.Mlp.create rng [ 16; 64; 10 ] in
    let opt = Optim.adam ~lr:0.01 (Layers.Mlp.params mlp) in
    let payload =
      Common.checkpoint_payload ~done_steps:600 ~losses:[ 0.5; 0.4 ] ~total:0.0 ~opt ~rngs:[]
    in
    let dir = fresh_dir "savelat" in
    let times =
      List.init 15 (fun _ ->
          let t0 = Scallop_utils.Monotonic.now () in
          ignore (Scallop_utils.Atomic_io.save ~dir ~keep:3 payload);
          Scallop_utils.Monotonic.now () -. t0)
    in
    Scallop_utils.Atomic_io.clear ~dir;
    let sorted = List.sort compare times in
    List.nth sorted (List.length sorted / 2)
  in
  let steps_per_epoch = config.Common.n_train in
  let saves_per_epoch = float_of_int steps_per_epoch /. float_of_int every_n_steps in
  let overhead_pct = 100.0 *. saves_per_epoch *. median_save_s /. plain.Common.epoch_time in
  let overhead_ok = overhead_pct <= 5.0 in
  if not overhead_ok then begin
    incr bench_failures;
    Fmt.epr "  OVERHEAD FAILURE: checkpointing costs %+.2f%% of epoch time (budget 5%%)@."
      overhead_pct
  end;
  Fmt.pr
    "  mnist-sum3: plain epoch %6.2fs, %.1f saves/epoch x %.1f ms median save = %.2f%% overhead %s@."
    plain.Common.epoch_time saves_per_epoch (1000.0 *. median_save_s) overhead_pct
    (if overhead_ok then "ok" else "VIOLATION");
  Format.pp_print_flush Format.std_formatter ();
  results :=
    Fmt.str
      {|    {"name": "checkpoint-overhead", "plain_epoch_s": %.4f, "checkpointed_epoch_s": %.4f, "median_save_ms": %.3f, "saves_per_epoch": %.1f, "overhead_pct": %.2f, "within_5pct": %b}|}
      plain.Common.epoch_time ckpt.Common.epoch_time (1000.0 *. median_save_s)
      saves_per_epoch overhead_pct overhead_ok
    :: !results;
  (* -- 2..4 run on a small self-contained trainer whose parameters we can
        inspect: an MLP classifier on fixed synthetic rows. ------------------- *)
  let data_rng = Scallop_utils.Rng.create 2026 in
  let synth =
    List.init 64 (fun _ ->
        let x = Nd.init [| 1; 8 |] (fun _ -> Scallop_utils.Rng.float data_rng) in
        (x, Scallop_utils.Rng.int data_rng 4))
  in
  let trainer_config =
    { Common.default_config with Common.epochs = 2; n_train = List.length synth; n_test = 0;
      clip_grad = m.clip_grad }
  in
  let make () =
    let rng = Scallop_utils.Rng.create 7 in
    let mlp = Layers.Mlp.create rng [ 8; 16; 4 ] in
    let opt = Optim.adam ~lr:0.01 (Layers.Mlp.params mlp) in
    (mlp, opt)
  in
  let run ?checkpoint ?crash_at (mlp, opt) =
    let steps = ref 0 in
    Common.run_task ?checkpoint ~task:"synthetic" ~config:trainer_config ~train_data:synth
      ~test_data:[] ~opt
      ~train_step:(fun (x, c) ->
        (match crash_at with
        | Some n -> incr steps; if !steps > n then raise Exit
        | None -> ());
        Common.bce (Layers.Mlp.classify mlp (Autodiff.const x)) (Autodiff.const (Common.one_hot 4 c)))
      ~eval_sample:(fun _ -> true)
      ()
  in
  let params_blob (mlp, _) =
    String.concat ""
      (List.map (fun (p : Autodiff.t) -> Serialize.nd_to_string p.Autodiff.value)
         (Layers.Mlp.params mlp))
  in
  let straight = make () in
  ignore (run straight);
  let reference = params_blob straight in
  (* kill after 7 optimizer steps, then resume in a fresh process image *)
  let ck_dir = fresh_dir "crash" in
  let ck = { (Common.checkpoint ck_dir) with Common.every_n_steps = 2 } in
  let crashed = make () in
  (try ignore (run ~checkpoint:ck ~crash_at:7 crashed) with Exit -> ());
  let resumed = make () in
  let _, opt2 = resumed in
  let t0 = Scallop_utils.Monotonic.now () in
  let recovered = Common.try_resume ~ck ~opt:opt2 ~rngs:[] in
  let recovery_ms = 1000.0 *. (Scallop_utils.Monotonic.now () -. t0) in
  let recovered_steps = match recovered with Some (s, _, _) -> s | None -> -1 in
  ignore (run ~checkpoint:ck resumed);
  let deterministic = String.equal (params_blob resumed) reference in
  if not deterministic then begin
    incr bench_failures;
    Fmt.epr "  DETERMINISM FAILURE: resumed parameters differ from uninterrupted run@."
  end;
  Fmt.pr "  crash@7/resume: recovered at step %d in %.2f ms, bit-identical params: %b@."
    recovered_steps recovery_ms deterministic;
  results :=
    Fmt.str
      {|    {"name": "crash-resume", "kill_after_steps": 7, "recovered_at_step": %d, "recovery_ms": %.3f, "bit_identical": %b}|}
      recovered_steps recovery_ms deterministic
    :: !results;
  (* -- corruption fallback: flip a byte in the newest snapshot --------------- *)
  let resume_steps () =
    let _, opt' = make () in
    match Common.try_resume ~ck ~opt:opt' ~rngs:[] with
    | Some (steps, _, _) -> steps
    | None -> 0
  in
  let fallback_ok =
    match List.rev (Scallop_utils.Atomic_io.generations ~dir:ck_dir) with
    | newest :: _ :: _ ->
        let before = resume_steps () in
        let path = Scallop_utils.Atomic_io.path_of ~dir:ck_dir newest in
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let body = really_input_string ic len in
        close_in ic;
        let b = Bytes.of_string body in
        Bytes.set b (len - 1) (Char.chr (Char.code (Bytes.get b (len - 1)) lxor 0xff));
        let oc = open_out_bin path in
        output_bytes oc b;
        close_out oc;
        (* resume must now land on an older (valid) generation *)
        let after = resume_steps () in
        after > 0 && after < before
    | _ -> false
  in
  if not fallback_ok then begin
    incr bench_failures;
    Fmt.epr "  FALLBACK FAILURE: corrupted newest snapshot was not skipped@."
  end;
  Fmt.pr "  corrupt newest snapshot -> previous generation used: %b@." fallback_ok;
  results :=
    Fmt.str {|    {"name": "corruption-fallback", "previous_generation_used": %b}|} fallback_ok
    :: !results;
  let oc = open_out "BENCH_resilience.json" in
  output_string oc "{\n  \"benchmarks\": [\n";
  output_string oc (String.concat ",\n" (List.rev !results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Fmt.pr "@.  wrote BENCH_resilience.json (%d measurements)@." (List.length !results)

(* ---- inference service (BENCH_service.json) ---------------------------------------------------- *)

(* The supervised service runtime under load, in two regimes:

   1. baseline: no faults — per-request latency percentiles (p50/p99, which
      include queue wait) and throughput, plus a bit-identity check of
      [Service.submit] against [Session.run_batch] over the same requests
      (the determinism contract; divergence bumps [bench_failures]);
   2. chaos: 10% worker kills + 10% stalls injected — goodput (successful
      replies per second) and the shed/retry/requeue/respawn counters.
      Every request must still reach a terminal outcome (violations bump
      [bench_failures]).

   Measurements land in BENCH_service.json. *)
let bench_service (m : mode) =
  section "Inference service: latency, goodput under chaos (writes BENCH_service.json)";
  let module Service = Scallop_serve.Service in
  let module Chaos = Scallop_serve.Chaos in
  let open Scallop_core in
  let module Rng = Scallop_utils.Rng in
  let n = if m.quick then 200 else 1000 in
  let jobs = min 4 (Scallop_utils.Pool.default_jobs ()) in
  let src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
rel n_path(c) = c := count(p: path(0, p))
query n_path|}
  in
  let compiled = Session.compile src in
  let sample data_rng i =
    let rng = Rng.substream data_rng i in
    let edges = ref [] in
    for a = 0 to 6 do
      for b = 0 to 6 do
        if a <> b && Rng.float rng < 0.4 then
          edges :=
            ( Provenance.Input.prob (0.05 +. (0.9 *. Rng.float rng)),
              Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] )
            :: !edges
      done
    done;
    [ ("edge", List.rev !edges) ]
  in
  let batch = Array.init n (sample (Rng.create 17)) in
  let interp = { (Interp.default_config ()) with Interp.rng = Rng.create 3 } in
  let spec = Registry.Max_min_prob in
  let results = ref [] in
  let percentile sorted p =
    let k = Array.length sorted in
    sorted.(min (k - 1) (int_of_float (ceil (p *. float_of_int k)) - 1))
  in
  let run_regime ~name ~chaos =
    let config =
      {
        (Service.default_config ()) with
        Service.jobs;
        queue_depth = n;
        max_retries = 2;
        backoff_base = 0.001;
        backoff_cap = 0.01;
        watchdog_interval = Some 0.01;
        interp;
        chaos;
      }
    in
    let svc = Service.create ~config spec in
    let t0 = Scallop_utils.Monotonic.now () in
    let tickets = Array.map (fun facts -> Service.submit svc ~facts compiled) batch in
    let outcomes = Array.map (Service.await svc) tickets in
    let wall = Scallop_utils.Monotonic.now () -. t0 in
    Service.shutdown svc;
    let s = Service.stats svc in
    let ok =
      Array.fold_left
        (fun acc (o : Service.outcome) ->
          match o.Service.response with Ok _ -> acc + 1 | Error _ -> acc)
        0 outcomes
    in
    if s.Service.completed <> n then begin
      incr bench_failures;
      Fmt.epr "  SERVICE FAILURE (%s): %d/%d terminal outcomes@." name s.Service.completed n
    end;
    if s.Service.domains_spawned <> s.Service.domains_joined then begin
      incr bench_failures;
      Fmt.epr "  SERVICE FAILURE (%s): domain leak (%d spawned, %d joined)@." name
        s.Service.domains_spawned s.Service.domains_joined
    end;
    (svc, outcomes, wall, s, ok)
  in

  Fmt.pr "  %d requests, %d workers, provenance %s@.@." n jobs (Registry.spec_name spec);
  (* regime 1: baseline *)
  let _, outcomes, wall, _, ok = run_regime ~name:"baseline" ~chaos:Chaos.none in
  let lat = Array.map (fun (o : Service.outcome) -> o.Service.latency) outcomes in
  Array.sort compare lat;
  let p50 = 1000.0 *. percentile lat 0.50 and p99 = 1000.0 *. percentile lat 0.99 in
  let rps = float_of_int n /. wall in
  Fmt.pr "  baseline: ok=%d/%d  p50=%.2fms  p99=%.2fms  throughput=%.0f req/s@." ok n p50 p99
    rps;
  let reference =
    Session.run_batch ~jobs ~config:interp ~provenance_of:(fun _ -> Registry.create spec)
      compiled batch
  in
  let divergent = ref 0 in
  Array.iteri
    (fun i (o : Service.outcome) ->
      match (o.Service.response, reference.(i)) with
      | Ok got, Ok want
        when Stdlib.compare got.Session.outputs want.Session.outputs = 0
             && Stdlib.compare got.Session.fact_ids want.Session.fact_ids = 0 ->
          ()
      | _ -> incr divergent)
    outcomes;
  if !divergent > 0 then begin
    incr bench_failures;
    Fmt.epr "  DETERMINISM FAILURE: %d/%d requests diverge from run_batch@." !divergent n
  end
  else Fmt.pr "  determinism: all %d requests bit-identical to run_batch@." n;
  results :=
    Fmt.str
      {|    {"name": "baseline", "requests": %d, "jobs": %d, "ok": %d, "p50_ms": %.3f, "p99_ms": %.3f, "throughput_rps": %.1f, "divergent": %d}|}
      n jobs ok p50 p99 rps !divergent
    :: !results;

  (* regime 2: chaos *)
  let chaos =
    {
      Chaos.kill_prob = 0.1;
      latency_prob = 0.1;
      latency = 0.005;
      budget_fault_prob = 0.0;
      nan_prob = 0.0;
      seed = 7;
    }
  in
  let _, _, wall, s, ok = run_regime ~name:"chaos" ~chaos in
  let goodput = float_of_int ok /. wall in
  Fmt.pr
    "  chaos(kill=10%%, stall=10%%): ok=%d/%d  goodput=%.0f req/s  kills=%d stalls=%d \
     retries=%d requeues=%d respawns=%d shed=%d@."
    ok n goodput s.Service.chaos_kills s.Service.chaos_stalls s.Service.retries
    s.Service.requeues s.Service.respawns s.Service.shed;
  results :=
    Fmt.str
      {|    {"name": "chaos", "requests": %d, "jobs": %d, "ok": %d, "goodput_rps": %.1f, "kills": %d, "stalls": %d, "retries": %d, "requeues": %d, "respawns": %d, "shed": %d, "workers_lost": %d}|}
      n jobs ok goodput s.Service.chaos_kills s.Service.chaos_stalls s.Service.retries
      s.Service.requeues s.Service.respawns s.Service.shed s.Service.workers_lost
    :: !results;

  let oc = open_out "BENCH_service.json" in
  output_string oc "{\n  \"benchmarks\": [\n";
  output_string oc (String.concat ",\n" (List.rev !results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Fmt.pr "@.  wrote BENCH_service.json (%d measurements)@." (List.length !results)

(* ---- incremental maintenance (BENCH_incr.json) ---------------------------------------------------- *)

(* Steady-state update cost of the incremental session engine
   ({!Scallop_incr.Incr}) on the transitive-closure chain: each round
   asserts a batch of fresh edges at the chain tip and brings the
   materialized [path] view up to date, timed against a full cold
   re-derivation of the same EDB.  Every round's incremental result is
   compared bit-for-bit against the cold run, so this benchmark doubles as
   a correctness check; the acceptance gate is a >=5x steady-state speedup
   for single-fact updates under the exact-incremental provenances
   (boolean, minmaxprob).  A topkproofs row is reported uncached for
   contrast: that class falls back to cold recomputation, so its speedup
   hovers around 1x by design. *)
let bench_incr (m : mode) =
  section "Incremental maintenance: update latency vs full re-run (writes BENCH_incr.json)";
  let open Scallop_core in
  let module Incr = Scallop_incr.Incr in
  let tc_src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  let pair a b = Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] in
  (* bit-exact result equality: same relations, tuples, and output arms,
     floats compared with Float.equal (no tolerance) *)
  let output_equal (a : Provenance.Output.t) (b : Provenance.Output.t) =
    match (a, b) with
    | Provenance.Output.O_prob x, Provenance.Output.O_prob y -> Float.equal x y
    | a, b -> a = b
  in
  let results_equal (a : Session.result) (b : Session.result) =
    List.length a.Session.outputs = List.length b.Session.outputs
    && List.for_all2
         (fun (pa, la) (pb, lb) ->
           String.equal pa pb
           && List.length la = List.length lb
           && List.for_all2
                (fun (ta, oa) (tb, ob) -> Tuple.compare ta tb = 0 && output_equal oa ob)
                la lb)
         a.Session.outputs b.Session.outputs
  in
  let prob_for i = 0.5 +. (float_of_int (i mod 50) /. 100.0) in
  let assert_edge t i = Incr.assert_fact t ~pred:"edge" ~prob:(prob_for i) (pair i (i + 1)) in
  let results = ref [] in
  let single_fact = ref [] in
  (* One fresh session per configuration: assert the initial chain, pay the
     first full derivation, then measure the steady state. *)
  let run_config ~prov_name ~spec ~n ~batch ~rounds =
    let t = Incr.open_session ~spec tc_src in
    for i = 0 to n - 1 do
      assert_edge t i
    done;
    ignore (Incr.query t);
    let tip = ref n in
    let incr_total = ref 0.0 and cold_total = ref 0.0 in
    for _ = 1 to rounds do
      let t0 = Scallop_utils.Monotonic.now () in
      for _ = 1 to batch do
        assert_edge t !tip;
        incr tip
      done;
      let got = Incr.query t in
      incr_total := !incr_total +. (Scallop_utils.Monotonic.now () -. t0);
      let t0 = Scallop_utils.Monotonic.now () in
      let cold = Incr.run_cold t in
      cold_total := !cold_total +. (Scallop_utils.Monotonic.now () -. t0);
      if not (results_equal got cold) then begin
        incr bench_failures;
        Fmt.pr "  FAIL: %s batch=%d: incremental result diverges from cold run@." prov_name
          batch
      end
    done;
    let incr_mean = !incr_total /. float_of_int rounds in
    let cold_mean = !cold_total /. float_of_int rounds in
    let speedup = if incr_mean > 0.0 then cold_mean /. incr_mean else 0.0 in
    let exact = Incr.is_exact t in
    Fmt.pr "  %-12s n=%-4d batch=%-3d rounds=%-3d incr %8.3f ms  cold %8.3f ms  %7.1fx  (%a)@."
      prov_name n batch rounds (1000.0 *. incr_mean) (1000.0 *. cold_mean) speedup
      Incr.pp_session_stats (Incr.stats t);
    Format.pp_print_flush Format.std_formatter ();
    if batch = 1 && exact then single_fact := (prov_name, speedup) :: !single_fact;
    results :=
      Fmt.str
        {|    {"workload": "tc-chain-extend", "provenance": %S, "engine": %S, "n": %d, "batch": %d, "rounds": %d, "incr_mean_ms": %.3f, "cold_mean_ms": %.3f, "speedup": %.2f}|}
        prov_name
        (if exact then "delta" else "recompute")
        n batch rounds (1000.0 *. incr_mean) (1000.0 *. cold_mean) speedup
      :: !results;
    Incr.close t
  in
  let n = if m.quick then 300 else 500 in
  let rounds b = if m.quick then if b >= 64 then 3 else 6 else if b >= 64 then 5 else 12 in
  List.iter
    (fun (prov_name, spec) ->
      List.iter
        (fun batch -> run_config ~prov_name ~spec ~n ~batch ~rounds:(rounds batch))
        [ 1; 8; 64 ])
    [ ("boolean", Registry.Boolean); ("minmaxprob", Registry.Max_min_prob) ];
  (* the inexact class: cold-recompute fallback, reported for contrast *)
  run_config ~prov_name:"topkproofs-3" ~spec:(Registry.Top_k_proofs 3) ~n:60 ~batch:1
    ~rounds:3;
  (* acceptance gate: single-fact updates must be >=5x faster than a full
     re-derivation under every exact-incremental provenance measured *)
  List.iter
    (fun (prov_name, speedup) ->
      if speedup < 5.0 then begin
        incr bench_failures;
        Fmt.pr "  FAIL: %s single-fact speedup %.2fx is below the 5x gate@." prov_name speedup
      end)
    !single_fact;
  let gate_min =
    List.fold_left (fun acc (_, s) -> Float.min acc s) infinity !single_fact
  in
  let oc = open_out "BENCH_incr.json" in
  output_string oc "{\n  \"benchmarks\": [\n";
  output_string oc (String.concat ",\n" (List.rev !results));
  output_string oc "\n  ],\n";
  output_string oc
    (Fmt.str "  \"single_fact_speedup_min\": %.2f,\n  \"single_fact_speedup_gate\": 5.0\n}\n"
       (if gate_min = infinity then 0.0 else gate_min));
  close_out oc;
  Fmt.pr "@.  wrote BENCH_incr.json (%d measurements)@." (List.length !results)

(* ---- durable sessions (BENCH_durability.json) -------------------------------------------------- *)

(* Durability tax and recovery cost of [Durable] sessions:

   1. WAL overhead: single-fact update rounds (assert + query) on a TC
      chain, an ephemeral registry vs a durable one with fsync'd
      write-ahead logging.  Acceptance gate: the durable path costs at
      most 10% more than the ephemeral path (bump [bench_failures]).
   2. Recovery latency: time for a fresh manager to rebuild the session
      from snapshot + WAL replay, and bit-identity of the recovered
      session's answer against the pre-crash one (a divergence bumps
      [bench_failures]).
   3. Kill-point sweep: the active WAL segment truncated at sampled byte
      offsets — every cut must recover (torn tails are never fatal) and
      answer identically to a cold run. *)
let bench_durability (m : mode) =
  section "Durable sessions: WAL overhead + crash recovery (writes BENCH_durability.json)";
  let open Scallop_core in
  let module Durable = Scallop_incr.Durable in
  let tc_src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  let pair a b = Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] in
  let output_equal (a : Provenance.Output.t) (b : Provenance.Output.t) =
    match (a, b) with
    | Provenance.Output.O_prob x, Provenance.Output.O_prob y -> Float.equal x y
    | a, b -> a = b
  in
  let results_equal (a : Session.result) (b : Session.result) =
    List.length a.Session.outputs = List.length b.Session.outputs
    && List.for_all2
         (fun (pa, la) (pb, lb) ->
           String.equal pa pb
           && List.length la = List.length lb
           && List.for_all2
                (fun (ta, oa) (tb, ob) -> Tuple.compare ta tb = 0 && output_equal oa ob)
                la lb)
         a.Session.outputs b.Session.outputs
  in
  let rec rm_rf path =
    match Sys.is_directory path with
    | exception Sys_error _ -> ()
    | true ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        (try Sys.rmdir path with Sys_error _ -> ())
    | false -> ( try Sys.remove path with Sys_error _ -> ())
  in
  let scratch name =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "scallop-bench-durability-%d-%s" (Unix.getpid ()) name)
    in
    rm_rf d;
    d
  in
  let n = if m.quick then 300 else 500 in
  let rounds = if m.quick then 30 else 60 in
  let results = ref [] in
  (* one update round = assert one chain-extending edge, then query *)
  let run_updates ~state_dir =
    let cfg =
      match state_dir with
      | None -> Durable.config Registry.Boolean
      | Some dir -> Durable.config ~state_dir:dir Registry.Boolean
    in
    let mgr = Durable.create cfg in
    let _ = Durable.open_session mgr ~sid:"b" tc_src in
    for i = 0 to n - 1 do
      Durable.assert_fact mgr ~sid:"b" ~pred:"edge" (pair i (i + 1))
    done;
    ignore (Durable.query mgr ~sid:"b" ());
    let tip = ref n in
    let t0 = Scallop_utils.Monotonic.now () in
    for _ = 1 to rounds do
      Durable.assert_fact mgr ~sid:"b" ~pred:"edge" (pair !tip (!tip + 1));
      incr tip;
      ignore (Durable.query mgr ~sid:"b" ())
    done;
    let mean = (Scallop_utils.Monotonic.now () -. t0) /. float_of_int rounds in
    (mgr, mean)
  in
  let plain_mgr, plain_mean = run_updates ~state_dir:None in
  ignore (Durable.close plain_mgr ~sid:"b");
  let sd = scratch "wal" in
  let durable_mgr, durable_mean = run_updates ~state_dir:(Some sd) in
  let reference = Durable.query durable_mgr ~sid:"b" () in
  let w = Durable.stats durable_mgr in
  (* abandon without close: the on-disk state is a crash image *)
  Durable.shutdown durable_mgr;
  let overhead_pct = 100.0 *. ((durable_mean /. plain_mean) -. 1.0) in
  Fmt.pr
    "  TC-%d single-fact rounds: ephemeral %8.3f ms  durable %8.3f ms  overhead %+.1f%%@." n
    (1000.0 *. plain_mean) (1000.0 *. durable_mean) overhead_pct;
  Fmt.pr "  wal: %d appends, %d bytes, %d snapshots@." w.Durable.wal_appends
    w.Durable.wal_bytes w.Durable.snapshots;
  if overhead_pct > 10.0 then begin
    incr bench_failures;
    Fmt.pr "  FAIL: WAL overhead %.1f%% exceeds the 10%% gate@." overhead_pct
  end;
  results :=
    Fmt.str
      {|    {"workload": "tc-chain-extend", "n": %d, "rounds": %d, "ephemeral_mean_ms": %.3f, "durable_mean_ms": %.3f, "wal_overhead_pct": %.2f, "wal_appends": %d, "wal_bytes": %d, "snapshots": %d}|}
      n rounds (1000.0 *. plain_mean) (1000.0 *. durable_mean) overhead_pct
      w.Durable.wal_appends w.Durable.wal_bytes w.Durable.snapshots
    :: !results;
  (* recovery: rebuild from snapshot + replay, answer must be bit-identical *)
  let t0 = Scallop_utils.Monotonic.now () in
  let mgr2 = Durable.create (Durable.config ~state_dir:sd Registry.Boolean) in
  let recovery_ms = 1000.0 *. (Scallop_utils.Monotonic.now () -. t0) in
  let r = Durable.stats mgr2 in
  let recovered_answer = Durable.query mgr2 ~sid:"b" () in
  if not (results_equal recovered_answer reference) then begin
    incr bench_failures;
    Fmt.pr "  FAIL: recovered session diverges from the pre-crash answer@."
  end;
  Durable.shutdown mgr2;
  Fmt.pr "  recovery: %.3f ms (%d session, %d ops replayed, snapshot + bounded replay)@."
    recovery_ms r.Durable.recovered r.Durable.wal_replayed;
  results :=
    Fmt.str
      {|    {"workload": "recovery", "n": %d, "recovery_ms": %.3f, "sessions_recovered": %d, "ops_replayed": %d}|}
      n recovery_ms r.Durable.recovered r.Durable.wal_replayed
    :: !results;
  (* kill-point sweep over the active segment *)
  let sdir = Filename.concat (Filename.concat sd "sessions") "s-b" in
  let seg =
    Sys.readdir sdir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".log")
    |> List.sort compare |> List.rev |> List.hd |> Filename.concat sdir
  in
  let raw =
    let ic = open_in_bin seg in
    let d = In_channel.input_all ic in
    close_in ic;
    d
  in
  let cuts = if m.quick then 16 else 64 in
  let sweep_total = ref 0.0 and sweep_max = ref 0.0 and sweep_ok = ref 0 in
  for k = 0 to cuts - 1 do
    let cut = String.length raw * k / cuts in
    let oc = open_out_bin seg in
    output_string oc (String.sub raw 0 cut);
    close_out oc;
    let t0 = Scallop_utils.Monotonic.now () in
    match Durable.create (Durable.config ~state_dir:sd Registry.Boolean) with
    | exception e ->
        incr bench_failures;
        Fmt.pr "  FAIL: cut at byte %d crashed recovery: %s@." cut (Printexc.to_string e)
    | mgr ->
        let dt = 1000.0 *. (Scallop_utils.Monotonic.now () -. t0) in
        sweep_total := !sweep_total +. dt;
        if dt > !sweep_max then sweep_max := dt;
        let st = Durable.stats mgr in
        if st.Durable.recovery_failures > 0 then begin
          incr bench_failures;
          Fmt.pr "  FAIL: cut at byte %d quarantined the session (torn tail must recover)@."
            cut
        end
        else begin
          let got = Durable.query mgr ~sid:"b" () in
          let cold = Durable.run_cold mgr ~sid:"b" () in
          if results_equal got cold then incr sweep_ok
          else begin
            incr bench_failures;
            Fmt.pr "  FAIL: cut at byte %d diverges from the cold oracle@." cut
          end
        end;
        Durable.shutdown mgr
  done;
  let oc = open_out_bin seg in
  output_string oc raw;
  close_out oc;
  Fmt.pr "  kill-point sweep: %d/%d cuts recovered bit-identically (mean %.3f ms, max %.3f ms)@."
    !sweep_ok cuts
    (!sweep_total /. float_of_int cuts)
    !sweep_max;
  results :=
    Fmt.str
      {|    {"workload": "kill-point-sweep", "cuts": %d, "recovered_identical": %d, "recovery_mean_ms": %.3f, "recovery_max_ms": %.3f}|}
      cuts !sweep_ok
      (!sweep_total /. float_of_int cuts)
      !sweep_max
    :: !results;
  rm_rf sd;
  (* group commit: concurrent writers to one session share fsync batches.
     Four domains drive fsync'd asserts into the same session (disjoint
     edge chains), so one batching leader settles several appends to the
     session's WAL per fsync; the sync count landing below the append
     count is the acceptance gate. *)
  let module Wal = Scallop_utils.Wal in
  let gd = scratch "group" in
  let gmgr =
    Durable.create
      (Durable.config ~state_dir:gd ~group_commit:true ~group_window:0.0005
         Registry.Boolean)
  in
  let writers = 4 and per = if m.quick then 100 else 250 in
  ignore (Durable.open_session gmgr ~sid:"g" tc_src);
  let t0 = Scallop_utils.Monotonic.now () in
  let domains =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let v = (w * 1000) + i in
              Durable.assert_fact gmgr ~sid:"g" ~pred:"edge" (pair v (v + 1))
            done))
  in
  List.iter Domain.join domains;
  let group_dt = Scallop_utils.Monotonic.now () -. t0 in
  let syncs, appends =
    match gmgr.Durable.wal_group with Some g -> Wal.Group.stats g | None -> (0, 0)
  in
  Durable.shutdown gmgr;
  rm_rf gd;
  let per_op_us = 1e6 *. group_dt /. float_of_int (writers * per) in
  Fmt.pr
    "  group commit: %d writers x %d fsync'd asserts in %.3f s (%.1f us/op), %d fsyncs \
     for %d appends (%.2f appends/fsync)@."
    writers per group_dt per_op_us syncs appends
    (float_of_int appends /. float_of_int (max 1 syncs));
  if syncs >= appends then begin
    incr bench_failures;
    Fmt.pr "  FAIL: group commit did not amortize (%d fsyncs for %d appends)@." syncs appends
  end;
  results :=
    Fmt.str
      {|    {"workload": "group-commit", "writers": %d, "ops_per_writer": %d, "per_op_us": %.1f, "fsyncs": %d, "appends": %d, "appends_per_fsync": %.2f}|}
      writers per per_op_us syncs appends
      (float_of_int appends /. float_of_int (max 1 syncs))
    :: !results;
  let oc = open_out "BENCH_durability.json" in
  output_string oc "{\n  \"benchmarks\": [\n";
  output_string oc (String.concat ",\n" (List.rev !results));
  output_string oc "\n  ],\n";
  output_string oc
    (Fmt.str "  \"wal_overhead_pct\": %.2f,\n  \"wal_overhead_gate_pct\": 10.0\n}\n"
       overhead_pct);
  close_out oc;
  Fmt.pr "@.  wrote BENCH_durability.json (%d measurements)@." (List.length !results)

(* ---- replicated durable sessions (BENCH_replication.json) -------------------------------------- *)

(* Cost and latency of WAL shipping ([Replica] over [Durable]):

   1. Acked-write overhead: single-fact update rounds (assert + query) on
      a TC-300 chain, a local-fsync durable session vs a primary whose
      every write blocks on a quorum acknowledgement from a live
      follower.  Acceptance gate: quorum acking costs at most 25% over
      the local-fsync path (bump [bench_failures]).
   2. Steady-state replication lag: the primary's acknowledgement-barrier
      wait — the time from local commit to quorum ack — mean and max.
   3. Failover: promotion latency of the caught-up follower, and
      bit-identity of the promoted node's answer against the primary's
      (a divergence bumps [bench_failures]).
   4. Async catch-up: a follower draining a burst of unpolled frames,
      reported as frames/s and total catch-up time. *)
let bench_replication (m : mode) =
  section "Replication: quorum-ack overhead, lag, failover (writes BENCH_replication.json)";
  let open Scallop_core in
  let module Durable = Scallop_incr.Durable in
  let module Replica = Scallop_incr.Replica in
  let tc_src =
    {|type edge(i32, i32)
rel path(a, b) = edge(a, b)
rel path(a, c) = path(a, b), edge(b, c)
query path|}
  in
  let pair a b = Tuple.of_list [ Value.int Value.I32 a; Value.int Value.I32 b ] in
  let output_equal (a : Provenance.Output.t) (b : Provenance.Output.t) =
    match (a, b) with
    | Provenance.Output.O_prob x, Provenance.Output.O_prob y -> Float.equal x y
    | a, b -> a = b
  in
  let results_equal (a : Session.result) (b : Session.result) =
    List.length a.Session.outputs = List.length b.Session.outputs
    && List.for_all2
         (fun (pa, la) (pb, lb) ->
           String.equal pa pb
           && List.length la = List.length lb
           && List.for_all2
                (fun (ta, oa) (tb, ob) -> Tuple.compare ta tb = 0 && output_equal oa ob)
                la lb)
         a.Session.outputs b.Session.outputs
  in
  let rec rm_rf path =
    match Sys.is_directory path with
    | exception Sys_error _ -> ()
    | true ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        (try Sys.rmdir path with Sys_error _ -> ())
    | false -> ( try Sys.remove path with Sys_error _ -> ())
  in
  let scratch name =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "scallop-bench-replication-%d-%s" (Unix.getpid ()) name)
    in
    rm_rf d;
    d
  in
  let n = 300 in
  let rounds = if m.quick then 30 else 60 in
  let results = ref [] in
  let seed_and_time mgr =
    let _ = Durable.open_session mgr ~sid:"b" tc_src in
    for i = 0 to n - 1 do
      Durable.assert_fact mgr ~sid:"b" ~pred:"edge" (pair i (i + 1))
    done;
    ignore (Durable.query mgr ~sid:"b" ());
    let tip = ref n in
    let t0 = Scallop_utils.Monotonic.now () in
    for _ = 1 to rounds do
      Durable.assert_fact mgr ~sid:"b" ~pred:"edge" (pair !tip (!tip + 1));
      incr tip;
      ignore (Durable.query mgr ~sid:"b" ())
    done;
    (Scallop_utils.Monotonic.now () -. t0) /. float_of_int rounds
  in
  (* baseline: local fsync'd WAL, no replication *)
  let sd = scratch "local" in
  let local_mgr = Durable.create (Durable.config ~state_dir:sd Registry.Boolean) in
  let local_mean = seed_and_time local_mgr in
  Durable.shutdown local_mgr;
  rm_rf sd;
  (* quorum cluster: every write blocks on a live follower's ack.  The
     follower runs in-process, driven by the primary's barrier through the
     pump hook — the measured wait is apply + local log + ack, not a poll
     interval. *)
  let root = scratch "quorum" in
  let ship = Filename.concat root "ship" in
  let fmgr =
    Durable.create
      (Durable.config ~state_dir:(Filename.concat root "f") Registry.Boolean)
  in
  let fol_ref = ref None in
  let pump () = match !fol_ref with Some f -> ignore (Replica.Follower.poll f) | None -> () in
  let prim =
    Replica.Primary.create ~dir:ship ~id:"alpha" ~ack:Replica.Ack_quorum ~cluster:1
      ~ack_timeout:30.0 ~pump ()
  in
  let pmgr =
    Durable.create
      (Durable.config ~state_dir:(Filename.concat root "p")
         ~repl:(Replica.Primary.sink prim) Registry.Boolean)
  in
  let fol = Replica.Follower.create ~dir:ship ~fid:"beta" ~mgr:fmgr () in
  fol_ref := Some fol;
  let quorum_mean = seed_and_time pmgr in
  let overhead_pct = 100.0 *. ((quorum_mean /. local_mean) -. 1.0) in
  let pst = Replica.Primary.status prim in
  Fmt.pr
    "  TC-%d single-fact rounds: local-fsync %8.3f ms  quorum-acked %8.3f ms  overhead \
     %+.1f%%@."
    n (1000.0 *. local_mean) (1000.0 *. quorum_mean) overhead_pct;
  Fmt.pr "  replication lag (commit -> quorum ack): mean %.3f ms  max %.3f ms  (%d barriers)@."
    pst.Replica.Primary.st_mean_barrier_ms pst.st_max_barrier_ms pst.st_barriers;
  if overhead_pct > 25.0 then begin
    incr bench_failures;
    Fmt.pr "  FAIL: quorum-ack overhead %.1f%% exceeds the 25%% gate@." overhead_pct
  end;
  results :=
    Fmt.str
      {|    {"workload": "tc-chain-extend", "n": %d, "rounds": %d, "local_fsync_mean_ms": %.3f, "quorum_mean_ms": %.3f, "quorum_overhead_pct": %.2f, "lag_mean_ms": %.3f, "lag_max_ms": %.3f, "frames_shipped": %d}|}
      n rounds (1000.0 *. local_mean) (1000.0 *. quorum_mean) overhead_pct
      pst.Replica.Primary.st_mean_barrier_ms pst.st_max_barrier_ms pst.st_shipped
    :: !results;
  (* failover: promote the caught-up follower, answers must be bit-identical *)
  let reference = Durable.query pmgr ~sid:"b" () in
  let t0 = Scallop_utils.Monotonic.now () in
  let _epoch = Replica.Follower.promote fol in
  let promote_ms = 1000.0 *. (Scallop_utils.Monotonic.now () -. t0) in
  let promoted_answer = Durable.query fmgr ~sid:"b" () in
  if not (results_equal promoted_answer reference) then begin
    incr bench_failures;
    Fmt.pr "  FAIL: promoted follower diverges from the primary's answer@."
  end;
  let fst_ = Replica.Follower.status fol in
  Fmt.pr "  failover: promoted in %.3f ms (%d frames applied, %d divergences)@." promote_ms
    fst_.Replica.Follower.st_applied fst_.st_divergences;
  results :=
    Fmt.str
      {|    {"workload": "failover", "promote_ms": %.3f, "frames_applied": %d, "divergences": %d}|}
      promote_ms fst_.Replica.Follower.st_applied fst_.st_divergences
    :: !results;
  Durable.shutdown pmgr;
  Durable.shutdown fmgr;
  Replica.Primary.close prim;
  Replica.Follower.close fol;
  rm_rf root;
  (* async catch-up: a follower draining a burst it never saw land *)
  let root2 = scratch "async" in
  let ship2 = Filename.concat root2 "ship" in
  let prim2 =
    Replica.Primary.create ~dir:ship2 ~id:"alpha" ~ack:Replica.Ack_async ()
  in
  let pmgr2 =
    Durable.create
      (Durable.config ~state_dir:(Filename.concat root2 "p")
         ~repl:(Replica.Primary.sink prim2) Registry.Boolean)
  in
  let _ = Durable.open_session pmgr2 ~sid:"b" tc_src in
  for i = 0 to n - 1 do
    Durable.assert_fact pmgr2 ~sid:"b" ~pred:"edge" (pair i (i + 1))
  done;
  let fmgr2 =
    Durable.create
      (Durable.config ~state_dir:(Filename.concat root2 "f") Registry.Boolean)
  in
  let fol2 = Replica.Follower.create ~dir:ship2 ~fid:"beta" ~mgr:fmgr2 () in
  let t0 = Scallop_utils.Monotonic.now () in
  while Replica.Follower.poll fol2 > 0 do
    ()
  done;
  let catchup_s = Scallop_utils.Monotonic.now () -. t0 in
  let fst2 = Replica.Follower.status fol2 in
  let frames = fst2.Replica.Follower.st_applied + fst2.st_installs + fst2.st_adoptions in
  Fmt.pr "  async catch-up: %d-op burst drained in %.3f ms (%.0f frames/s)@." n
    (1000.0 *. catchup_s)
    (float_of_int (max 1 frames) /. Float.max 1e-9 catchup_s);
  results :=
    Fmt.str
      {|    {"workload": "async-catchup", "burst_ops": %d, "catchup_ms": %.3f, "frames_per_s": %.0f}|}
      n (1000.0 *. catchup_s)
      (float_of_int (max 1 frames) /. Float.max 1e-9 catchup_s)
    :: !results;
  Durable.shutdown pmgr2;
  Durable.shutdown fmgr2;
  Replica.Primary.close prim2;
  Replica.Follower.close fol2;
  rm_rf root2;
  let oc = open_out "BENCH_replication.json" in
  output_string oc "{\n  \"benchmarks\": [\n";
  output_string oc (String.concat ",\n" (List.rev !results));
  output_string oc "\n  ],\n";
  output_string oc
    (Fmt.str "  \"quorum_overhead_pct\": %.2f,\n  \"quorum_overhead_gate_pct\": 25.0\n}\n"
       overhead_pct);
  close_out oc;
  Fmt.pr "@.  wrote BENCH_replication.json (%d measurements)@." (List.length !results)

(* ---- driver --------------------------------------------------------------------------------------- *)

let all_experiments =
  [
    ("table1", bench_table1);
    ("table2", bench_table2);
    ("accuracy", bench_accuracy);
    ("provenances", bench_provenances);
    ("table4", bench_table4);
    ("table5", bench_table5);
    ("fig18", bench_fig18);
    ("fig19", bench_fig19);
    ("pacman", bench_pacman);
    ("micro", bench_micro);
    ("interp", bench_interp);
    ("batch", bench_batch);
    ("budget", bench_budget);
    ("resilience", bench_resilience);
    ("service", bench_service);
    ("incr", bench_incr);
    ("durability", bench_durability);
    ("replication", bench_replication);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* flags: --full, --checkpoint-dir DIR, --resume, --clip-grad X; everything
     else selects experiments by name *)
  let quick = ref true and checkpoint_dir = ref None and resume = ref false in
  let clip_grad = ref None in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest -> quick := false; parse rest
    | "--resume" :: rest -> resume := true; parse rest
    | "--checkpoint-dir" :: dir :: rest -> checkpoint_dir := Some dir; parse rest
    | "--clip-grad" :: x :: rest -> (
        match float_of_string_opt x with
        | Some v when v > 0.0 -> clip_grad := Some v; parse rest
        | _ -> Fmt.epr "--clip-grad expects a positive float, got %S@." x; exit 2)
    | ("--checkpoint-dir" | "--clip-grad") :: [] ->
        Fmt.epr "missing value for the last flag@."; exit 2
    | name :: rest -> selected := name :: !selected; parse rest
  in
  parse args;
  let selected = List.rev !selected in
  let mode =
    { quick = !quick; checkpoint_dir = !checkpoint_dir; resume = !resume;
      clip_grad = !clip_grad }
  in
  let to_run =
    if selected = [] then all_experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name all_experiments with
          | Some f -> Some (name, f)
          | None ->
              Fmt.epr "unknown experiment %S (available: %s)@." name
                (String.concat ", " (List.map fst all_experiments));
              None)
        selected
  in
  Fmt.pr "Scallop reproduction benchmark suite (%s mode)@."
    (if mode.quick then "quick" else "full");
  let t0 = Scallop_utils.Monotonic.now () in
  List.iter
    (fun (name, f) ->
      let t = Scallop_utils.Monotonic.now () in
      f mode;
      Fmt.pr "@.[%s finished in %.1fs]@." name (Scallop_utils.Monotonic.now () -. t);
      Format.pp_print_flush Format.std_formatter ())
    to_run;
  Fmt.pr "@.All experiments finished in %.1fs.@." (Scallop_utils.Monotonic.now () -. t0);
  if !bench_failures > 0 then begin
    Fmt.epr "%d correctness check(s) failed.@." !bench_failures;
    exit 1
  end
